#include "runtime/session.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "nn/conv2d.h"
#include "obs/profile.h"
#include "quant/qparams.h"
#include "runtime/jit/jit.h"
#include "tensor/int8_kernels.h"

namespace sesr::runtime {

Session::Session(std::shared_ptr<const Program> program) : program_(std::move(program)) {
  if (!program_) throw std::invalid_argument("Session: null program");
  const auto& buffers = program_->buffers();

  // One slab for every arena-planned buffer. The planner aligns offsets to
  // 64 bytes; align the base the same way so every window is cache-line
  // aligned (and safely float-aligned).
  const int64_t arena_bytes = program_->peak_arena_bytes();
  std::byte* base = nullptr;
  if (arena_bytes > 0) {
    arena_ = std::make_unique_for_overwrite<std::byte[]>(static_cast<size_t>(arena_bytes) + 63);
    base = arena_.get();
    while (reinterpret_cast<uintptr_t>(base) % 64 != 0) ++base;
    std::memset(base, 0, static_cast<size_t>(arena_bytes));
  }

  views_.resize(buffers.size());
  int8_.assign(buffers.size(), nullptr);
  for (size_t i = 0; i < buffers.size(); ++i) {
    const BufferInfo& info = buffers[i];
    if (info.arena_offset < 0) continue;  // external (bound per run) or unused
    std::byte* p = base + info.arena_offset;
    if (info.dtype == DType::kFloat32)
      views_[i] = Tensor::view(info.shape, reinterpret_cast<float*>(p));
    else
      int8_[i] = reinterpret_cast<int8_t*>(p);
  }
  bound_.resize(buffers.size());
}

Tensor Session::run(const Tensor& input) {
  Tensor output(program_->output_shape());
  run_into(input, output);
  return output;
}

void Session::run_into(const Tensor& input, Tensor& output) {
  execute(input, output, nullptr);
}

void Session::run_scatter(const Tensor& input, std::span<Tensor> per_sample) {
  const Shape& out_shape = program_->output_shape();
  if (out_shape.ndim() != 4)
    throw std::invalid_argument("Session::run_scatter: NCHW programs only, output is " +
                                out_shape.to_string());
  if (out_shape[0] != static_cast<int64_t>(per_sample.size()))
    throw std::invalid_argument("Session::run_scatter: program batch " +
                                std::to_string(out_shape[0]) + " but " +
                                std::to_string(per_sample.size()) + " outputs");
  if (staging_.shape() != out_shape) staging_ = Tensor(out_shape);
  execute(input, staging_, nullptr);
  const Shape sample{1, out_shape[1], out_shape[2], out_shape[3]};
  const int64_t stride = sample.numel();
  for (size_t i = 0; i < per_sample.size(); ++i) {
    // Copy-assign from a named view: per_sample[i] deep-copies its rows out
    // of the staging buffer (move-assigning the view itself would leave the
    // caller aliased into state the next dispatch overwrites).
    const Tensor row =
        Tensor::view(sample, staging_.data() + static_cast<int64_t>(i) * stride);
    per_sample[i] = row;
  }
}

void Session::run_hooked(const Tensor& input, Tensor& output, const StepHook& hook) {
  if (program_->precision() != Precision::kFloat32)
    throw std::invalid_argument("Session::run_hooked: float-precision programs only");
  if (!hook) throw std::invalid_argument("Session::run_hooked: null hook");
  execute(input, output, &hook);
}

void Session::execute(const Tensor& input, Tensor& output, const StepHook* hook) {
  if (input.shape() != program_->input_shape())
    throw std::invalid_argument("Session::run_into: input " + input.shape().to_string() +
                                " but program expects " +
                                program_->input_shape().to_string());
  if (input.data() == output.data())
    throw std::invalid_argument("Session::run_into: output must not alias input");
  if (output.shape() != program_->output_shape()) output = Tensor(program_->output_shape());

  const int out_idx = program_->output_buffer();
  for (size_t i = 0; i < views_.size(); ++i) bound_[i] = &views_[i];
  // The builder guarantees no op ever writes buffer 0, so aliasing the
  // caller's (const) input there is safe.
  bound_[0] = const_cast<Tensor*>(&input);
  if (out_idx != 0) bound_[static_cast<size_t>(out_idx)] = &output;

  const auto& buffers = program_->buffers();
  const auto& qdata = program_->qdata();
  const auto shape_of = [&](int id) -> const Shape& {
    return buffers[static_cast<size_t>(id)].shape;
  };
  const auto qbuf = [&](int id) -> int8_t* { return int8_[static_cast<size_t>(id)]; };
  // The program-owned copy-and-patch module (null unless compiled under the
  // jit tier). Ops with op.jit >= 0 route through its patched entry points;
  // the module is immutable and shared read-only across sessions.
  const jit::JitModule* const jm = program_->jit_module().get();

  // Per-op profiling (SESR_PROFILE_OPS): resolved once per run — disabled,
  // the whole hook is this one false branch plus a null check per op; on
  // sampled runs each op's wall time lands in the program's profile.
  obs::ProgramProfile* prof = nullptr;
  if (obs::profile_enabled()) {
    obs::ProgramProfile& profile = program_->profile();
    if (profile.sample_this_run()) prof = &profile;
  }

  int64_t op_start_ns = 0;
  int op_index = -1;
  for (const Op& op : program_->ops()) {
    ++op_index;
    if (prof != nullptr) op_start_ns = obs::profile_now_ns();
    const QStepData* q = op.qdata >= 0 ? &qdata[static_cast<size_t>(op.qdata)] : nullptr;
    // Each op runs on the SIMD kernel tier recorded at compile time by the
    // select_kernel_variants pass (flipping SESR_KERNEL_VARIANT after
    // compilation does not retarget this program). dispatch_for is an array
    // index — negligible against any kernel.
    const simd::KernelDispatch& kd = simd::dispatch_for(op.variant);
    switch (op.kind) {
      case Op::Kind::kLayer: {
        workspace_.reset();
        const Tensor& in = *bound_[static_cast<size_t>(op.input)];
        Tensor& out = *bound_[static_cast<size_t>(op.output)];
        if (op.conv != nullptr) {
          // Fused or not, conv goes through the dispatch-aware microkernel
          // (the downcast was resolved by the variant pass).
          op.conv->infer_into_fused(in, out, workspace_, op.fused, &kd);
        } else if (op.fused.kind != nn::FusedActivation::Kind::kNone) {
          throw std::logic_error("Session: fused activation on a non-Conv2d op");
        } else {
          op.layer->infer_into(in, out, workspace_);
        }
        break;
      }
      case Op::Kind::kAdd:
        bound_[static_cast<size_t>(op.output)]->add_(*bound_[static_cast<size_t>(op.input)]);
        break;
      case Op::Kind::kScale:
        bound_[static_cast<size_t>(op.output)]->mul_scalar(op.alpha);
        break;
      case Op::Kind::kConcat: {
        // Mirrors nn::Concat::forward's per-sample interleaving exactly.
        Tensor& dst = *bound_[static_cast<size_t>(op.output)];
        const int64_t n = dst.dim(0), total_c = dst.dim(1);
        const int64_t hw = dst.dim(2) * dst.dim(3);
        for (int64_t i = 0; i < n; ++i) {
          int64_t c_off = 0;
          for (int src : op.sources) {
            const Tensor& o = *bound_[static_cast<size_t>(src)];
            const int64_t c = o.dim(1);
            std::copy(o.data() + i * c * hw, o.data() + (i + 1) * c * hw,
                      dst.data() + (i * total_c + c_off) * hw);
            c_off += c;
          }
        }
        break;
      }
      case Op::Kind::kQuantize: {
        const Tensor& src = *bound_[static_cast<size_t>(op.input)];
        quant::quantize_activations(src.flat(), q->out,
                                    {qbuf(op.output), static_cast<size_t>(src.numel())});
        break;
      }
      case Op::Kind::kDequantize: {
        Tensor& dst = *bound_[static_cast<size_t>(op.output)];
        quant::dequantize_activations(
            {qbuf(op.input), static_cast<size_t>(dst.numel())}, q->in_a, dst.flat());
        break;
      }
      case Op::Kind::kFakeQuant:
        quant::fake_quantize_with(*bound_[static_cast<size_t>(op.output)], q->out);
        break;
      case Op::Kind::kQConv: {
        workspace_.reset();
        const Shape& in = shape_of(op.input);
        const Shape& out = shape_of(op.output);
        Int8ConvSpec spec;
        spec.in_c = q->in_c;
        spec.out_c = q->out_c;
        spec.kernel = q->kernel;
        spec.stride = q->stride;
        spec.pad = q->pad;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.weights = q->weights.data();
        spec.weights_kw = q->weights_kw.empty() ? nullptr : q->weights_kw.data();
        spec.bias = q->bias.empty() ? nullptr : q->bias.data();
        spec.requant = q->requant.data();
        spec.act_lut = q->act_lut.empty() ? nullptr : q->act_lut.data();
        spec.act_lut_channels = q->act_lut_channels;
        if (op.jit >= 0)
          jit::run_conv(jm->op(op.jit), spec, qbuf(op.input), in[0], in[2], in[3],
                        out[2], out[3], qbuf(op.output), workspace_, kd);
        else
          int8_conv2d_nchw(qbuf(op.input), in[0], in[2], in[3], out[2], out[3], spec,
                           qbuf(op.output), workspace_, &kd);
        break;
      }
      case Op::Kind::kQDepthwise: {
        const Shape& in = shape_of(op.input);
        const Shape& out = shape_of(op.output);
        Int8DepthwiseSpec spec;
        spec.channels = q->in_c;
        spec.kernel = q->kernel;
        spec.stride = q->stride;
        spec.pad = q->pad;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.weights = q->weights.data();
        spec.bias = q->bias.empty() ? nullptr : q->bias.data();
        spec.requant = q->requant.data();
        int8_depthwise_nchw(qbuf(op.input), in[0], in[2], in[3], out[2], out[3], spec,
                            qbuf(op.output));
        break;
      }
      case Op::Kind::kQLinear: {
        const Shape& in = shape_of(op.input);
        Int8LinearSpec spec;
        spec.in_features = q->in_c;
        spec.out_features = q->out_c;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.weights = q->weights.data();
        spec.bias = q->bias.empty() ? nullptr : q->bias.data();
        spec.requant = q->requant.data();
        int8_linear(qbuf(op.input), in[0], spec, qbuf(op.output), &kd);
        break;
      }
      case Op::Kind::kQActivation: {
        const Shape& in = shape_of(op.input);
        Int8ActivationSpec spec;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.pos = q->pos;
        spec.neg = q->neg;
        spec.neg_per_channel =
            q->neg_per_channel.empty() ? nullptr : q->neg_per_channel.data();
        spec.out_cap = q->out_cap;
        if (op.jit >= 0) {
          // The patched stream bakes the shared 256-entry table and numel;
          // per-channel slopes never compile (compile_jit skips them).
          jm->op(op.jit).lut(qbuf(op.input), qbuf(op.output));
          break;
        }
        const bool nchw = in.ndim() == 4;
        int8_activation_nchw(qbuf(op.input), nchw ? in[0] : 1, nchw ? in[1] : 1,
                             nchw ? in[2] * in[3] : in.numel(), spec, qbuf(op.output),
                             &kd);
        break;
      }
      case Op::Kind::kQAdd: {
        const int64_t numel = shape_of(op.output).numel();
        if (op.jit >= 0)
          jm->op(op.jit).add(qbuf(op.output), qbuf(op.input), qbuf(op.output));
        else if (!q->add_lut.empty())
          int8_add_lut(qbuf(op.output), qbuf(op.input), q->add_lut.data(), numel,
                       qbuf(op.output));
        else
          int8_add(qbuf(op.output), q->in_a.zero_point, q->m_a, qbuf(op.input),
                   q->in_b.zero_point, q->m_b, q->out.zero_point, numel, qbuf(op.output));
        break;
      }
      case Op::Kind::kQScale: {
        const int64_t numel = shape_of(op.output).numel();
        if (op.jit >= 0)
          jm->op(op.jit).lut(qbuf(op.output), qbuf(op.output));
        else
          int8_rescale(qbuf(op.output), q->in_a.zero_point, q->m_a, q->out.zero_point,
                       numel, qbuf(op.output), &kd);
        break;
      }
      case Op::Kind::kQConcat: {
        const Shape& dst = shape_of(op.output);
        const int64_t n = dst[0], total_c = dst[1], hw = dst[2] * dst[3];
        for (int64_t i = 0; i < n; ++i) {
          int64_t c_off = 0;
          for (size_t s = 0; s < op.sources.size(); ++s) {
            const int src = op.sources[s];
            const Shape& src_shape = shape_of(src);
            const int64_t c = src_shape[1];
            const quant::QParams& sp = q->src_qp[s];
            int8_rescale(qbuf(src) + i * c * hw, sp.zero_point,
                         static_cast<double>(sp.scale) / q->out.scale, q->out.zero_point,
                         c * hw, qbuf(op.output) + (i * total_c + c_off) * hw, &kd);
            c_off += c;
          }
        }
        break;
      }
      case Op::Kind::kQDepthToSpace: {
        const Shape& in = shape_of(op.input);
        int8_depth_to_space(qbuf(op.input), in[0], in[1], in[2], in[3], q->block,
                            qbuf(op.output), &kd);
        break;
      }
      case Op::Kind::kQTileChannels: {
        const Shape& in = shape_of(op.input);
        int8_tile_channels(qbuf(op.input), in[0], in[1], in[2] * in[3], q->times,
                           qbuf(op.output));
        break;
      }
    }
    if (prof != nullptr)
      prof->record(static_cast<size_t>(op_index), obs::profile_now_ns() - op_start_ns);
    if (hook != nullptr && op.output >= 0)
      (*hook)(op_index, *bound_[static_cast<size_t>(op.output)]);
  }

  // Degenerate identity program: the "result" is the input buffer itself.
  if (out_idx == 0) output = input;
}

}  // namespace sesr::runtime
