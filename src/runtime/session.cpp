#include "runtime/session.h"

#include <algorithm>
#include <stdexcept>

namespace sesr::runtime {

Session::Session(std::shared_ptr<const InferencePlan> plan) : plan_(std::move(plan)) {
  if (!plan_) throw std::invalid_argument("Session: null plan");
  const auto& shapes = plan_->buffer_shapes();
  buffers_.reserve(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    // Slot 0 aliases the caller's input and the output slot aliases the
    // caller's output at run time; keep their session-side tensors empty.
    const bool external = i == 0 || static_cast<int>(i) == plan_->output_buffer();
    buffers_.emplace_back(external ? Shape{} : shapes[i]);
  }
  bound_.resize(buffers_.size());
}

Tensor Session::run(const Tensor& input) {
  Tensor output(plan_->output_shape());
  run_into(input, output);
  return output;
}

void Session::run_into(const Tensor& input, Tensor& output) {
  if (input.shape() != plan_->input_shape())
    throw std::invalid_argument("Session::run_into: input " + input.shape().to_string() +
                                " but plan expects " + plan_->input_shape().to_string());
  if (input.data() == output.data())
    throw std::invalid_argument("Session::run_into: output must not alias input");
  if (output.shape() != plan_->output_shape()) output = Tensor(plan_->output_shape());

  const int out_idx = plan_->output_buffer();
  for (size_t i = 0; i < buffers_.size(); ++i) bound_[i] = &buffers_[i];
  // The builder guarantees no step ever writes buffer 0, so aliasing the
  // caller's (const) input there is safe.
  bound_[0] = const_cast<Tensor*>(&input);
  if (out_idx != 0) bound_[static_cast<size_t>(out_idx)] = &output;

  for (const PlanStep& step : plan_->steps()) {
    switch (step.kind) {
      case PlanStep::Kind::kLayer: {
        workspace_.reset();
        step.layer->infer_into(*bound_[static_cast<size_t>(step.input)],
                               *bound_[static_cast<size_t>(step.output)], workspace_);
        break;
      }
      case PlanStep::Kind::kAdd:
        bound_[static_cast<size_t>(step.output)]->add_(
            *bound_[static_cast<size_t>(step.input)]);
        break;
      case PlanStep::Kind::kScale:
        bound_[static_cast<size_t>(step.output)]->mul_scalar(step.alpha);
        break;
      case PlanStep::Kind::kConcat: {
        // Mirrors nn::Concat::forward's per-sample interleaving exactly.
        Tensor& dst = *bound_[static_cast<size_t>(step.output)];
        const int64_t n = dst.dim(0), total_c = dst.dim(1);
        const int64_t hw = dst.dim(2) * dst.dim(3);
        for (int64_t i = 0; i < n; ++i) {
          int64_t c_off = 0;
          for (int src : step.sources) {
            const Tensor& o = *bound_[static_cast<size_t>(src)];
            const int64_t c = o.dim(1);
            std::copy(o.data() + i * c * hw, o.data() + (i + 1) * c * hw,
                      dst.data() + (i * total_c + c_off) * hw);
            c_off += c;
          }
        }
        break;
      }
    }
  }

  // Degenerate identity program: the "result" is the input buffer itself.
  if (out_idx == 0) output = input;
}

}  // namespace sesr::runtime
