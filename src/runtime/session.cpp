#include "runtime/session.h"

#include <algorithm>
#include <stdexcept>

#include "quant/qparams.h"
#include "tensor/int8_kernels.h"

namespace sesr::runtime {

Session::Session(std::shared_ptr<const InferencePlan> plan) : plan_(std::move(plan)) {
  if (!plan_) throw std::invalid_argument("Session: null plan");
  const auto& shapes = plan_->buffer_shapes();
  buffers_.reserve(shapes.size());
  qbuffers_.resize(shapes.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    // Slot 0 aliases the caller's input and the output slot aliases the
    // caller's output at run time; keep their session-side tensors empty.
    // Quantised plans also skip float storage for buffers that only ever
    // live on the int8 side.
    const bool external = i == 0 || static_cast<int>(i) == plan_->output_buffer();
    const bool wants_float = plan_->buffer_needs_float(static_cast<int>(i));
    buffers_.emplace_back(external || !wants_float ? Shape{} : shapes[i]);
    if (plan_->buffer_needs_int8(static_cast<int>(i)))
      qbuffers_[i].resize(static_cast<size_t>(shapes[i].numel()));
  }
  bound_.resize(buffers_.size());
}

Tensor Session::run(const Tensor& input) {
  Tensor output(plan_->output_shape());
  run_into(input, output);
  return output;
}

void Session::run_into(const Tensor& input, Tensor& output) {
  execute(input, output, nullptr);
}

void Session::run_hooked(const Tensor& input, Tensor& output, const StepHook& hook) {
  if (plan_->precision() != Precision::kFloat32)
    throw std::invalid_argument("Session::run_hooked: float-precision plans only");
  if (!hook) throw std::invalid_argument("Session::run_hooked: null hook");
  execute(input, output, &hook);
}

void Session::execute(const Tensor& input, Tensor& output, const StepHook* hook) {
  if (input.shape() != plan_->input_shape())
    throw std::invalid_argument("Session::run_into: input " + input.shape().to_string() +
                                " but plan expects " + plan_->input_shape().to_string());
  if (input.data() == output.data())
    throw std::invalid_argument("Session::run_into: output must not alias input");
  if (output.shape() != plan_->output_shape()) output = Tensor(plan_->output_shape());

  const int out_idx = plan_->output_buffer();
  for (size_t i = 0; i < buffers_.size(); ++i) bound_[i] = &buffers_[i];
  // The builder guarantees no step ever writes buffer 0, so aliasing the
  // caller's (const) input there is safe.
  bound_[0] = const_cast<Tensor*>(&input);
  if (out_idx != 0) bound_[static_cast<size_t>(out_idx)] = &output;

  const auto& shapes = plan_->buffer_shapes();
  const auto& qdata = plan_->qstep_data();
  const auto shape_of = [&](int id) -> const Shape& {
    return shapes[static_cast<size_t>(id)];
  };
  const auto qbuf = [&](int id) -> int8_t* { return qbuffers_[static_cast<size_t>(id)].data(); };

  int step_index = -1;
  for (const PlanStep& step : plan_->steps()) {
    ++step_index;
    const QStepData* q = step.qdata >= 0 ? &qdata[static_cast<size_t>(step.qdata)] : nullptr;
    switch (step.kind) {
      case PlanStep::Kind::kLayer: {
        workspace_.reset();
        step.layer->infer_into(*bound_[static_cast<size_t>(step.input)],
                               *bound_[static_cast<size_t>(step.output)], workspace_);
        break;
      }
      case PlanStep::Kind::kAdd:
        bound_[static_cast<size_t>(step.output)]->add_(
            *bound_[static_cast<size_t>(step.input)]);
        break;
      case PlanStep::Kind::kScale:
        bound_[static_cast<size_t>(step.output)]->mul_scalar(step.alpha);
        break;
      case PlanStep::Kind::kConcat: {
        // Mirrors nn::Concat::forward's per-sample interleaving exactly.
        Tensor& dst = *bound_[static_cast<size_t>(step.output)];
        const int64_t n = dst.dim(0), total_c = dst.dim(1);
        const int64_t hw = dst.dim(2) * dst.dim(3);
        for (int64_t i = 0; i < n; ++i) {
          int64_t c_off = 0;
          for (int src : step.sources) {
            const Tensor& o = *bound_[static_cast<size_t>(src)];
            const int64_t c = o.dim(1);
            std::copy(o.data() + i * c * hw, o.data() + (i + 1) * c * hw,
                      dst.data() + (i * total_c + c_off) * hw);
            c_off += c;
          }
        }
        break;
      }
      case PlanStep::Kind::kQuantize: {
        const Tensor& src = *bound_[static_cast<size_t>(step.input)];
        quant::quantize_activations(src.flat(), q->out,
                                    {qbuf(step.output), static_cast<size_t>(src.numel())});
        break;
      }
      case PlanStep::Kind::kDequantize: {
        Tensor& dst = *bound_[static_cast<size_t>(step.output)];
        quant::dequantize_activations(
            {qbuf(step.input), static_cast<size_t>(dst.numel())}, q->in_a, dst.flat());
        break;
      }
      case PlanStep::Kind::kFakeQuant:
        quant::fake_quantize_with(*bound_[static_cast<size_t>(step.output)], q->out);
        break;
      case PlanStep::Kind::kQConv: {
        workspace_.reset();
        const Shape& in = shape_of(step.input);
        const Shape& out = shape_of(step.output);
        Int8ConvSpec spec;
        spec.in_c = q->in_c;
        spec.out_c = q->out_c;
        spec.kernel = q->kernel;
        spec.stride = q->stride;
        spec.pad = q->pad;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.weights = q->weights.data();
        spec.bias = q->bias.empty() ? nullptr : q->bias.data();
        spec.requant = q->requant.data();
        int8_conv2d_nchw(qbuf(step.input), in[0], in[2], in[3], out[2], out[3], spec,
                         qbuf(step.output), workspace_);
        break;
      }
      case PlanStep::Kind::kQDepthwise: {
        const Shape& in = shape_of(step.input);
        const Shape& out = shape_of(step.output);
        Int8DepthwiseSpec spec;
        spec.channels = q->in_c;
        spec.kernel = q->kernel;
        spec.stride = q->stride;
        spec.pad = q->pad;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.weights = q->weights.data();
        spec.bias = q->bias.empty() ? nullptr : q->bias.data();
        spec.requant = q->requant.data();
        int8_depthwise_nchw(qbuf(step.input), in[0], in[2], in[3], out[2], out[3], spec,
                            qbuf(step.output));
        break;
      }
      case PlanStep::Kind::kQLinear: {
        const Shape& in = shape_of(step.input);
        Int8LinearSpec spec;
        spec.in_features = q->in_c;
        spec.out_features = q->out_c;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.weights = q->weights.data();
        spec.bias = q->bias.empty() ? nullptr : q->bias.data();
        spec.requant = q->requant.data();
        int8_linear(qbuf(step.input), in[0], spec, qbuf(step.output));
        break;
      }
      case PlanStep::Kind::kQActivation: {
        const Shape& in = shape_of(step.input);
        Int8ActivationSpec spec;
        spec.in_zero = q->in_a.zero_point;
        spec.out_zero = q->out.zero_point;
        spec.pos = q->pos;
        spec.neg = q->neg;
        spec.neg_per_channel =
            q->neg_per_channel.empty() ? nullptr : q->neg_per_channel.data();
        spec.out_cap = q->out_cap;
        const bool nchw = in.ndim() == 4;
        int8_activation_nchw(qbuf(step.input), nchw ? in[0] : 1, nchw ? in[1] : 1,
                             nchw ? in[2] * in[3] : in.numel(), spec, qbuf(step.output));
        break;
      }
      case PlanStep::Kind::kQAdd: {
        const int64_t numel = shape_of(step.output).numel();
        int8_add(qbuf(step.output), q->in_a.zero_point, q->m_a, qbuf(step.input),
                 q->in_b.zero_point, q->m_b, q->out.zero_point, numel, qbuf(step.output));
        break;
      }
      case PlanStep::Kind::kQScale: {
        const int64_t numel = shape_of(step.output).numel();
        int8_rescale(qbuf(step.output), q->in_a.zero_point, q->m_a, q->out.zero_point,
                     numel, qbuf(step.output));
        break;
      }
      case PlanStep::Kind::kQConcat: {
        const Shape& dst = shape_of(step.output);
        const int64_t n = dst[0], total_c = dst[1], hw = dst[2] * dst[3];
        for (int64_t i = 0; i < n; ++i) {
          int64_t c_off = 0;
          for (size_t s = 0; s < step.sources.size(); ++s) {
            const int src = step.sources[s];
            const Shape& src_shape = shape_of(src);
            const int64_t c = src_shape[1];
            const quant::QParams& sp = q->src_qp[s];
            int8_rescale(qbuf(src) + i * c * hw, sp.zero_point,
                         static_cast<double>(sp.scale) / q->out.scale, q->out.zero_point,
                         c * hw, qbuf(step.output) + (i * total_c + c_off) * hw);
            c_off += c;
          }
        }
        break;
      }
      case PlanStep::Kind::kQDepthToSpace: {
        const Shape& in = shape_of(step.input);
        int8_depth_to_space(qbuf(step.input), in[0], in[1], in[2], in[3], q->block,
                            qbuf(step.output));
        break;
      }
      case PlanStep::Kind::kQTileChannels: {
        const Shape& in = shape_of(step.input);
        int8_tile_channels(qbuf(step.input), in[0], in[1], in[2] * in[3], q->times,
                           qbuf(step.output));
        break;
      }
    }
    if (hook != nullptr && step.output >= 0)
      (*hook)(step_index, *bound_[static_cast<size_t>(step.output)]);
  }

  // Degenerate identity program: the "result" is the input buffer itself.
  if (out_idx == 0) output = input;
}

}  // namespace sesr::runtime
