// The optimisation pass pipeline over runtime::Program.
//
// Passes are plain functions Program& -> void, written once against the
// typed IR and therefore shared by the fp32 and int8 backends. Every pass
// preserves bit-exactness: fusion replays the standalone kernels' exact
// arithmetic inside the producer's write-back loop, DCE only removes ops
// whose results cannot reach the output, and in-place election only aliases
// a pointwise output onto an input whose last use is that op. run_passes
// applies the configured passes in the canonical order (fuse, DCE, in-place)
// and always finishes with the arena planner.
#pragma once

#include <vector>

#include "runtime/program.h"

namespace sesr::runtime {

/// Live interval of a buffer over a program's op list (op indices,
/// inclusive). def is the first write, last the final read or write; a
/// buffer no op touches has def == last == -1. The program input (id 0) is
/// never written, so its def stays -1 while last tracks its final read.
struct LiveInterval {
  int def = -1;
  int last = -1;

  [[nodiscard]] bool used() const { return last >= 0; }
  [[nodiscard]] bool overlaps(const LiveInterval& other) const {
    return used() && other.used() && def <= other.last && other.def <= last;
  }
};

/// One interval per buffer id, from a single walk of the op list. Reads
/// cover op.input, op.sources, and — for read-modify-write kinds
/// (op_reads_output) — op.output.
[[nodiscard]] std::vector<LiveInterval> compute_live_intervals(const Program& program);

/// Fold conv -> pointwise-activation pairs (fp32 kLayer Conv2d + fusable
/// activation; int8 kQConv + kQActivation) into the conv op when the
/// intermediate buffer has no other reader.
void fuse_pointwise_activations(Program& program);

/// Drop ops whose outputs can never reach the program output (backward
/// liveness sweep).
void eliminate_dead_ops(Program& program);

/// Alias the output of alias-safe pointwise ops onto their input when the
/// input's live range ends at that op, merging the two buffers.
void elect_in_place(Program& program);

/// The kernel tier a program compiled right now would be stamped with:
/// kJit when SESR_KERNEL_VARIANT=jit and the JIT tier is actually available
/// in this process, else simd::active_variant(). Exposed so plan caches
/// (models::NetworkUpscaler) can key on the resolved tier — a cached plan
/// must never be served across an environment flip it was not compiled for.
[[nodiscard]] simd::KernelVariant resolved_kernel_variant();

/// Stamp every dispatch-backed op with resolved_kernel_variant() and record
/// it on the program; resolves kLayer Conv2d downcasts while walking.
/// Always runs, for every PassConfig — Session::execute routes each op
/// through its recorded tier, so the stamp must exist even on raw programs.
void select_kernel_variants(Program& program);

/// Liveness-based greedy-by-size offset assignment: every surviving
/// intermediate buffer gets a 64-byte-aligned offset into one contiguous
/// slab such that no two buffers with overlapping live intervals share
/// bytes. Sets BufferInfo::arena_offset and the program's
/// peak_arena_bytes(). Always runs, for every PassConfig.
void plan_arena(Program& program);

/// The pipeline: configured passes in canonical order, then plan_arena.
void run_passes(Program& program, const PassConfig& config);

/// Mutable access to a Program for the pass implementations (and only them).
struct ProgramEditor {
  explicit ProgramEditor(Program& p) : program(p) {}

  [[nodiscard]] std::vector<Op>& ops() { return program.ops_; }
  [[nodiscard]] std::vector<BufferInfo>& buffers() { return program.buffers_; }
  [[nodiscard]] std::vector<QStepData>& qdata() { return program.qdata_; }
  [[nodiscard]] int& output() { return program.output_; }
  [[nodiscard]] int64_t& arena_bytes() { return program.arena_bytes_; }
  [[nodiscard]] int64_t& sum_buffer_bytes() { return program.sum_buffer_bytes_; }
  [[nodiscard]] PassStats& stats() { return program.stats_; }
  [[nodiscard]] simd::KernelVariant& kernel_variant() { return program.kernel_variant_; }
  [[nodiscard]] bool& kernel_variant_forced() { return program.kernel_variant_forced_; }
  [[nodiscard]] std::shared_ptr<const jit::JitModule>& jit_module() { return program.jit_; }
  [[nodiscard]] int64_t& jit_ops() { return program.jit_ops_; }
  [[nodiscard]] double& jit_compile_ms() { return program.jit_compile_ms_; }
  [[nodiscard]] int64_t& jit_code_bytes() { return program.jit_code_bytes_; }

  Program& program;
};

}  // namespace sesr::runtime
