// In-place election: alias pointwise outputs onto dying inputs.
//
// Replaces PR 2's builder-time pinning heuristic with a whole-program
// liveness analysis: an alias-safe op (shape-preserving, kernel tolerates
// output == input) may write straight into its input buffer exactly when no
// later op reads that buffer. Composite pins are no longer involved in the
// decision — a residual source stays un-aliased simply because its later
// kAdd read keeps it live. Merging the two buffer ids halves the op's
// traffic and lets the arena planner drop the output buffer entirely.
#include <vector>

#include "runtime/passes/passes.h"

namespace sesr::runtime {

void elect_in_place(Program& program) {
  ProgramEditor edit(program);
  std::vector<Op>& ops = edit.ops();
  std::vector<LiveInterval> intervals = compute_live_intervals(program);

  for (size_t k = 0; k < ops.size(); ++k) {
    Op& op = ops[k];
    if (!op.alias_safe) continue;
    const int a = op.input, b = op.output;
    if (a < 0 || a == b) continue;
    // The program input is read-only, and an already-produced program output
    // must not be overwritten by reuse. (b itself may be the output: merging
    // simply makes `a` the externally-bound result buffer.)
    if (program.is_external(a)) continue;
    const BufferInfo& ba = edit.buffers()[static_cast<size_t>(a)];
    const BufferInfo& bb = edit.buffers()[static_cast<size_t>(b)];
    if (ba.dtype != bb.dtype || ba.shape != bb.shape) continue;
    if (intervals[static_cast<size_t>(a)].last != static_cast<int>(k)) continue;
    if (intervals[static_cast<size_t>(b)].def != static_cast<int>(k)) continue;

    // Merge b into a: rewrite every later reference and retire b.
    for (size_t j = k; j < ops.size(); ++j) {
      Op& later = ops[j];
      if (later.input == b) later.input = a;
      if (later.output == b) later.output = a;
      for (int& src : later.sources)
        if (src == b) src = a;
    }
    if (edit.output() == b) edit.output() = a;
    edit.buffers()[static_cast<size_t>(a)].grid = bb.grid;
    intervals[static_cast<size_t>(a)].last = intervals[static_cast<size_t>(b)].last;
    intervals[static_cast<size_t>(b)] = {};
    ++edit.stats().in_place_elected;
  }
}

}  // namespace sesr::runtime
