// Liveness-based arena planning, TFLite-Micro greedy-by-size style.
//
// Every surviving intermediate buffer (not the externally-bound program
// input/output) gets a byte offset into one contiguous slab such that no two
// buffers whose live intervals overlap share any byte. Buffers are placed
// largest-first; each one takes the lowest 64-byte-aligned offset that fits
// in a gap between the already-placed buffers it temporally overlaps.
// Greedy-by-size is the classic near-optimal heuristic for this interval
// scheduling problem — big tensors claim the low offsets, small ones fill
// the holes their disjoint lifetimes open up.
#include <algorithm>
#include <vector>

#include "runtime/passes/passes.h"

namespace sesr::runtime {
namespace {

constexpr int64_t kAlign = 64;  // cache-line alignment for every buffer start

int64_t align_up(int64_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

void plan_arena(Program& program) {
  ProgramEditor edit(program);
  const std::vector<LiveInterval> intervals = compute_live_intervals(program);
  std::vector<BufferInfo>& buffers = edit.buffers();

  struct Item {
    int id = 0;
    int64_t size = 0;  // aligned
  };
  std::vector<Item> items;
  int64_t sum = 0;  // one-buffer-per-tensor baseline, in the same aligned units
  for (size_t i = 0; i < buffers.size(); ++i) {
    buffers[i].arena_offset = -1;
    const int id = static_cast<int>(i);
    if (program.is_external(id) || !intervals[i].used()) continue;
    items.push_back({id, align_up(buffers[i].size_bytes())});
    sum += items.back().size;
  }
  edit.sum_buffer_bytes() = sum;
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.size != b.size ? a.size > b.size : a.id < b.id;
  });

  struct Placed {
    int64_t offset = 0;
    int64_t size = 0;
    int id = 0;
  };
  std::vector<Placed> placed;
  int64_t peak = 0;
  for (const Item& item : items) {
    // Only buffers alive at the same time constrain the placement.
    std::vector<Placed> conflicts;
    for (const Placed& p : placed)
      if (intervals[static_cast<size_t>(p.id)].overlaps(
              intervals[static_cast<size_t>(item.id)]))
        conflicts.push_back(p);
    std::sort(conflicts.begin(), conflicts.end(),
              [](const Placed& a, const Placed& b) { return a.offset < b.offset; });

    int64_t offset = 0;
    for (const Placed& c : conflicts) {
      if (offset + item.size <= c.offset) break;  // fits in the gap below c
      offset = std::max(offset, align_up(c.offset + c.size));
    }
    buffers[static_cast<size_t>(item.id)].arena_offset = offset;
    placed.push_back({offset, item.size, item.id});
    peak = std::max(peak, offset + item.size);
  }
  edit.arena_bytes() = peak;
}

}  // namespace sesr::runtime
