#include "runtime/jit/jit.h"
#include "runtime/passes/passes.h"

namespace sesr::runtime {

std::vector<LiveInterval> compute_live_intervals(const Program& program) {
  std::vector<LiveInterval> intervals(program.buffers().size());
  const auto read = [&](int id, int k) {
    if (id < 0) return;
    intervals[static_cast<size_t>(id)].last = k;
  };
  const auto write = [&](int id, int k) {
    LiveInterval& iv = intervals[static_cast<size_t>(id)];
    if (iv.def < 0) iv.def = k;
    iv.last = k;
  };
  const auto& ops = program.ops();
  for (size_t k = 0; k < ops.size(); ++k) {
    const Op& op = ops[k];
    const int idx = static_cast<int>(k);
    read(op.input, idx);
    for (int src : op.sources) read(src, idx);
    if (op_reads_output(op.kind)) read(op.output, idx);
    write(op.output, idx);
  }
  return intervals;
}

void run_passes(Program& program, const PassConfig& config) {
  if (config.fuse_activations) fuse_pointwise_activations(program);
  if (config.eliminate_dead_ops) eliminate_dead_ops(program);
  if (config.elect_in_place) elect_in_place(program);
  // Like the planner, never optional: sessions execute each op through the
  // kernel tier recorded here.
  select_kernel_variants(program);
  plan_arena(program);
  // Last: the op list and every shape/grid are final, so the copy-and-patch
  // compiler can bake them into straight-line code. No-op off the jit tier.
  jit::compile_jit(program);
}

}  // namespace sesr::runtime
