// Conv -> pointwise-activation fusion.
//
// A convolution immediately followed by a fusable activation whose only
// reader is that activation collapses into one op: the float conv microkernel
// applies the activation's exact scalar expressions in its write-back loop
// (nn::FusedActivation::apply), and the int8 conv maps each requantised
// output byte through the exact 256-entry table the standalone
// int8_activation_nchw kernel would have used (int8_activation_build_lut).
// Either way the fused op computes the standalone pair's composition value
// for value, so fusion is bit-exact; what it saves is one full read+write
// pass over the intermediate tensor — and, after arena planning, the
// intermediate buffer itself.
#include <vector>

#include "nn/conv2d.h"
#include "runtime/passes/passes.h"

namespace sesr::runtime {
namespace {

/// Readers per buffer (op.input, op.sources, and RMW outputs all count).
std::vector<int> reader_counts(const Program& program) {
  std::vector<int> readers(program.buffers().size(), 0);
  for (const Op& op : program.ops()) {
    if (op.input >= 0) ++readers[static_cast<size_t>(op.input)];
    for (int src : op.sources) ++readers[static_cast<size_t>(src)];
    if (op_reads_output(op.kind)) ++readers[static_cast<size_t>(op.output)];
  }
  return readers;
}

/// The intermediate buffer may vanish only if the activation is its sole
/// consumer and it is not the program output.
bool sole_consumer(const Program& program, const std::vector<int>& readers,
                   const Op& producer, const Op& consumer) {
  return consumer.input == producer.output &&
         readers[static_cast<size_t>(producer.output)] == 1 &&
         !program.is_external(producer.output);
}

bool fuse_float(Program& program, const std::vector<int>& readers, Op& conv_op,
                const Op& act_op) {
  if (conv_op.kind != Op::Kind::kLayer || act_op.kind != Op::Kind::kLayer) return false;
  if (conv_op.fused.kind != nn::FusedActivation::Kind::kNone) return false;
  if (dynamic_cast<const nn::Conv2d*>(conv_op.layer) == nullptr) return false;
  if (!sole_consumer(program, readers, conv_op, act_op)) return false;
  const nn::FusedActivation act = nn::FusedActivation::from(*act_op.layer);
  if (act.kind == nn::FusedActivation::Kind::kNone) return false;
  conv_op.fused = act;
  conv_op.fused_layer = act_op.layer;
  conv_op.output = act_op.output;
  conv_op.alias_safe = false;  // a conv reads its input while writing
  return true;
}

bool fuse_int8(Program& program, const std::vector<int>& readers, Op& conv_op,
               const Op& act_op) {
  if (conv_op.kind != Op::Kind::kQConv || act_op.kind != Op::Kind::kQActivation)
    return false;
  ProgramEditor edit(program);
  QStepData& conv_q = edit.qdata()[static_cast<size_t>(conv_op.qdata)];
  if (conv_q.act_lut_channels != 0) return false;
  if (!sole_consumer(program, readers, conv_op, act_op)) return false;

  // The lowering validated that the activation's input grid is the conv's
  // output grid, so chaining conv requant -> activation LUT is exactly the
  // standalone kernel sequence.
  const QStepData& act_q = edit.qdata()[static_cast<size_t>(act_op.qdata)];
  Int8ActivationSpec spec;
  spec.in_zero = act_q.in_a.zero_point;
  spec.out_zero = act_q.out.zero_point;
  spec.pos = act_q.pos;
  spec.out_cap = act_q.out_cap;
  const int64_t channels =
      act_q.neg_per_channel.empty() ? 1 : static_cast<int64_t>(act_q.neg_per_channel.size());
  conv_q.act_lut.resize(static_cast<size_t>(channels) * 256);
  for (int64_t c = 0; c < channels; ++c)
    int8_activation_build_lut(
        spec, act_q.neg_per_channel.empty() ? act_q.neg : act_q.neg_per_channel[c],
        conv_q.act_lut.data() + c * 256);
  conv_q.act_lut_channels = channels;

  conv_op.fused_layer = act_op.layer;
  conv_op.output = act_op.output;
  // The fused op writes the activation's buffer on the activation's grid.
  edit.buffers()[static_cast<size_t>(conv_op.output)].grid = act_q.out;
  return true;
}

}  // namespace

void fuse_pointwise_activations(Program& program) {
  ProgramEditor edit(program);
  const std::vector<int> readers = reader_counts(program);
  std::vector<Op>& ops = edit.ops();
  std::vector<Op> fused;
  fused.reserve(ops.size());
  for (size_t k = 0; k < ops.size(); ++k) {
    if (k + 1 < ops.size()) {
      Op& conv_op = ops[k];
      const Op& act_op = ops[k + 1];
      if (fuse_float(program, readers, conv_op, act_op) ||
          fuse_int8(program, readers, conv_op, act_op)) {
        fused.push_back(std::move(conv_op));
        ++edit.stats().fused_activations;
        ++k;  // the activation op is consumed
        continue;
      }
    }
    fused.push_back(std::move(ops[k]));
  }
  ops = std::move(fused);
}

}  // namespace sesr::runtime
