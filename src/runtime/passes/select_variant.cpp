// Kernel-variant selection: the Program pass that makes SIMD tier choice a
// compile-time property of each program rather than an ambient global.
//
// The pass snapshots simd::active_variant() — cpuid best, or the
// SESR_KERNEL_VARIANT override — once, stamps it on the program header and
// on every op that consults the dispatch table, and resolves the Conv2d
// downcast for kLayer ops so Session::execute can call the dispatch-aware
// fused microkernel without per-run RTTI. Ops whose kernels have no
// vectorised variant (elementwise fp32 adds, depthwise conv, quantize /
// dequantize bridges, plain copies) stay at kScalar with dispatched = false;
// they run identical code on every tier, so annotating them would only add
// noise to dump().
//
// Because the stamp happens at compile time, flipping SESR_KERNEL_VARIANT
// afterwards does not retarget an existing program — recompile to change
// tiers. That is exactly the property the distributed tier relies on: every
// shard compiles its own programs at startup under a fleet-wide forced
// variant and stays on it for the program's lifetime.
#include "core/config.h"
#include "nn/conv2d.h"
#include "runtime/jit/jit.h"
#include "runtime/passes/passes.h"
#include "tensor/simd/dispatch.h"

namespace sesr::runtime {

simd::KernelVariant resolved_kernel_variant() {
  // SESR_KERNEL_VARIANT=jit selects the copy-and-patch tier — but only when
  // the process can actually JIT (stencils built, W^X arena executes);
  // otherwise it degrades to the base active tier, exactly like forcing
  // "avx512vnni" on an AVX2 box. active_variant() itself clamps kJit to the
  // base tier (the dispatch table has no jit kernels), so the knob is
  // re-parsed here where the program-level decision lives.
  const bool want_jit =
      simd::parse_variant(core::config_string("SESR_KERNEL_VARIANT")) ==
      simd::KernelVariant::kJit;
  return want_jit && jit::available() ? simd::KernelVariant::kJit
                                      : simd::active_variant();
}

void select_kernel_variants(Program& program) {
  ProgramEditor editor(program);
  const simd::KernelVariant variant = resolved_kernel_variant();
  editor.kernel_variant() = variant;
  editor.kernel_variant_forced() = simd::variant_forced();
  for (Op& op : editor.ops()) {
    op.variant = simd::KernelVariant::kScalar;
    op.dispatched = false;
    op.conv = nullptr;
    switch (op.kind) {
      case Op::Kind::kLayer:
        if (const auto* conv = dynamic_cast<const nn::Conv2d*>(op.layer)) {
          op.conv = conv;
          op.variant = variant;
          op.dispatched = true;
        }
        break;
      case Op::Kind::kQConv:
      case Op::Kind::kQLinear:
      case Op::Kind::kQActivation:
      case Op::Kind::kQScale:
      case Op::Kind::kQConcat:
      case Op::Kind::kQDepthToSpace:
        op.variant = variant;
        op.dispatched = true;
        break;
      default:
        break;
    }
  }
}

}  // namespace sesr::runtime
