// Dead-op elimination: a backward liveness sweep from the program output.
//
// All ops are pure writes into their output buffer (read-modify-write kinds
// read it too, but still only produce that one buffer), so an op whose
// output is not live below it cannot influence the result and is dropped.
// The raw builder and the int8 lowering emit near-SSA programs, which makes
// the single backward sweep exact: once an op defines a live buffer, the
// buffer's liveness above that op comes only from the op's own reads.
#include <algorithm>
#include <vector>

#include "runtime/passes/passes.h"

namespace sesr::runtime {

void eliminate_dead_ops(Program& program) {
  ProgramEditor edit(program);
  std::vector<Op>& ops = edit.ops();
  std::vector<uint8_t> live(program.buffers().size(), 0);
  live[static_cast<size_t>(program.output_buffer())] = 1;

  std::vector<Op> kept_reversed;
  kept_reversed.reserve(ops.size());
  for (size_t i = ops.size(); i-- > 0;) {
    Op& op = ops[i];
    if (live[static_cast<size_t>(op.output)] == 0) {
      ++edit.stats().dead_ops_removed;
      continue;
    }
    if (!op_reads_output(op.kind))
      live[static_cast<size_t>(op.output)] = 0;  // defined here; dead above
    if (op.input >= 0) live[static_cast<size_t>(op.input)] = 1;
    for (int src : op.sources) live[static_cast<size_t>(src)] = 1;
    kept_reversed.push_back(std::move(op));
  }
  ops.assign(std::make_move_iterator(kept_reversed.rbegin()),
             std::make_move_iterator(kept_reversed.rend()));
}

}  // namespace sesr::runtime
