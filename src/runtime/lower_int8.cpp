// Int8 lowering: the raw float program rewritten onto integer kernels.
//
// Lowers one float op at a time, liric-style, tracking for each logical
// value which typed buffers currently hold it — a float buffer (the id
// inherited from the float program), an int8 buffer (minted on demand with
// the value's grid), or both — and emitting quantize / dequantize bridges
// lazily where a consumer needs the other domain. Conv / depthwise / linear
// / activation / pixel-op steps become integer-kernel ops parameterised from
// the calibrated artifact; residual adds and scales become saturating
// integer rescales; layers without integer kernels run their float kernel
// followed by an explicit fake-quant of the result, so the fallback is
// numerically the fake-quant emulation of an int8 tensor and a later
// re-quantisation is lossless.
#include <stdexcept>
#include <string>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/linear.h"
#include "quant/quantized_model.h"
#include "runtime/passes/passes.h"
#include "runtime/program.h"

namespace sesr::runtime {

class Int8Lowering {
 public:
  Int8Lowering(const Program& src, const quant::QuantizedModel& artifact, Program& dst)
      : src_(src), artifact_(artifact), dst_(dst) {
    dst_.precision_ = Precision::kInt8;
    dst_.buffers_ = src_.buffers_;  // float ids carry over 1:1
    dst_.output_ = src_.output_;
    states_.resize(src_.buffers_.size());
    for (size_t i = 0; i < states_.size(); ++i)
      states_[i].float_id = static_cast<int>(i);
    states_[0].has_float = true;
    states_[0].qp = artifact_.input_qparams();
  }

  void run() {
    const auto& records = artifact_.steps();
    if (records.size() != src_.ops_.size())
      throw std::invalid_argument(
          "compile_int8: artifact holds " + std::to_string(records.size()) +
          " step records but the program has " + std::to_string(src_.ops_.size()) +
          " ops — calibrated from a different module?");
    for (size_t k = 0; k < src_.ops_.size(); ++k) {
      const Op& op = src_.ops_[k];
      const quant::StepQuant& rec = records[k];
      if (rec.name != step_identity(op))
        throw std::invalid_argument("compile_int8: step " + std::to_string(k) + " is '" +
                                    step_identity(op) + "' but the artifact recorded '" +
                                    rec.name + "'");
      lower_op(op, rec);
    }
    ensure_float(dst_.output_);  // sessions hand the caller a float tensor
  }

 private:
  /// Domain state of one logical (float-program) buffer.
  struct BufferState {
    int float_id = -1;  ///< dst buffer holding the float content
    int int8_id = -1;   ///< dst buffer holding the int8 content (minted lazily)
    bool has_float = false;
    bool has_int8 = false;
    quant::QParams qp;  ///< grid of the buffer's current logical content
  };

  BufferState& state(int id) { return states_[static_cast<size_t>(id)]; }

  int add_qdata(QStepData data) {
    dst_.qdata_.push_back(std::move(data));
    return static_cast<int>(dst_.qdata_.size()) - 1;
  }

  void push(Op op) { dst_.ops_.push_back(std::move(op)); }

  static Op make_op(Op::Kind kind, int input, int output, int qdata) {
    Op op;
    op.kind = kind;
    op.input = input;
    op.output = output;
    op.qdata = qdata;
    return op;
  }

  /// The int8 twin of logical buffer `id`, minting the typed dst buffer on
  /// first use.
  int int8_id(int id) {
    BufferState& s = state(id);
    if (s.int8_id < 0) {
      s.int8_id = static_cast<int>(dst_.buffers_.size());
      dst_.buffers_.push_back({shape_of(id), DType::kInt8, s.qp, -1});
    }
    return s.int8_id;
  }

  /// Make the int8 side of `id` valid (emitting a quantize if needed).
  void ensure_int8(int id) {
    BufferState& s = state(id);
    if (s.has_int8) return;
    if (!s.has_float)
      throw std::logic_error("Int8Lowering: buffer " + std::to_string(id) +
                             " read before it was written");
    QStepData qd;
    qd.out = s.qp;
    push(make_op(Op::Kind::kQuantize, s.float_id, int8_id(id), add_qdata(std::move(qd))));
    dst_.buffers_[static_cast<size_t>(s.int8_id)].grid = s.qp;
    s.has_int8 = true;
  }

  /// Make the float side of `id` valid (emitting a dequantize if needed).
  void ensure_float(int id) {
    BufferState& s = state(id);
    if (s.has_float) return;
    if (!s.has_int8)
      throw std::logic_error("Int8Lowering: buffer " + std::to_string(id) +
                             " read before it was written");
    QStepData qd;
    qd.in_a = s.qp;
    push(make_op(Op::Kind::kDequantize, s.int8_id, s.float_id, add_qdata(std::move(qd))));
    s.has_float = true;
  }

  /// Float content of `id` that is *on the int8 grid*. For every buffer but
  /// the program input that is what ensure_float yields (all float writers
  /// fake-quantise); buffer 0 holds the caller's raw tensor and is
  /// read-only, so its on-grid float view lives in a shadow buffer fed by
  /// quantize -> dequantize. Without this, a float-fallback layer reading
  /// the program input would see values the int8 boundary never transmits.
  int on_grid_float(int id) {
    if (id != 0) {
      ensure_float(id);
      return state(id).float_id;
    }
    if (input_shadow_ < 0) {
      ensure_int8(0);
      input_shadow_ = static_cast<int>(dst_.buffers_.size());
      dst_.buffers_.push_back({shape_of(0), DType::kFloat32, {}, -1});
      QStepData qd;
      qd.in_a = states_[0].qp;
      push(make_op(Op::Kind::kDequantize, states_[0].int8_id, input_shadow_,
                   add_qdata(std::move(qd))));
    }
    return input_shadow_;
  }

  /// Mark logical buffer `id` as holding content on grid `qp`, in the given
  /// domain only (the other side goes stale).
  void set_content(int id, const quant::QParams& qp, bool int8_domain) {
    BufferState& s = state(id);
    s.has_float = !int8_domain;
    s.has_int8 = int8_domain;
    s.qp = qp;
    if (int8_domain) dst_.buffers_[static_cast<size_t>(s.int8_id)].grid = qp;
  }

  /// The artifact computed its biases against the input grid it recorded;
  /// the lowering must agree with it or the accumulator arithmetic is
  /// silently wrong. Both walks are deterministic over the same program, so
  /// a mismatch means artifact/module confusion.
  void check_input_grid(int id, const quant::StepQuant& rec) const {
    if (states_[static_cast<size_t>(id)].qp != rec.in)
      throw std::logic_error("Int8Lowering: input grid of '" + rec.name +
                             "' disagrees with the artifact record");
  }

  [[nodiscard]] float weight_scale(const quant::StepQuant& rec, int64_t oc) const {
    return rec.weight_scales.size() == 1 ? rec.weight_scales[0]
                                         : rec.weight_scales[static_cast<size_t>(oc)];
  }

  void pack_weights(const quant::StepQuant& rec, int64_t out_channels, QStepData& qd) const {
    qd.weights.assign(rec.weights.begin(), rec.weights.end());  // widen int8 -> int16
    qd.bias = rec.bias;
    qd.requant.resize(static_cast<size_t>(out_channels));
    for (int64_t oc = 0; oc < out_channels; ++oc) {
      const double m = static_cast<double>(rec.in.scale) *
                       static_cast<double>(weight_scale(rec, oc)) /
                       static_cast<double>(rec.out.scale);
      qd.requant[static_cast<size_t>(oc)] = FixedPointMultiplier::from_double(m);
    }
  }

  /// Conv weights additionally re-pack onto the kernel's aligned row stride
  /// (zero-padded rows; see Int8ConvSpec::weights).
  void pack_conv_weights(const quant::StepQuant& rec, int64_t out_channels,
                         QStepData& qd) const {
    pack_weights(rec, out_channels, qd);
    const int64_t row = static_cast<int64_t>(rec.weights.size()) / out_channels;
    // Second packing for the stride-1 direct-conv block kernel: each kernel
    // row padded to an even tap count with zeros (the pair dots read one
    // column past odd kernels; the zero weight nulls it).
    const int64_t k = qd.kernel;
    const int64_t kceil = 2 * int8_kw_pairs(k);
    const int64_t groups = qd.in_c * k;  // (ic, kh) kernel rows per filter
    qd.weights_kw.assign(static_cast<size_t>(out_channels * groups * kceil), 0);
    for (int64_t oc = 0; oc < out_channels; ++oc)
      for (int64_t g = 0; g < groups; ++g)
        for (int64_t kw = 0; kw < k; ++kw)
          qd.weights_kw[static_cast<size_t>((oc * groups + g) * kceil + kw)] =
              qd.weights[static_cast<size_t>(oc * row + g * k + kw)];
    const int64_t stride = int8_packed_stride(row);
    std::vector<int16_t> packed(static_cast<size_t>(out_channels * stride), 0);
    for (int64_t oc = 0; oc < out_channels; ++oc)
      for (int64_t j = 0; j < row; ++j)
        packed[static_cast<size_t>(oc * stride + j)] =
            qd.weights[static_cast<size_t>(oc * row + j)];
    qd.weights = std::move(packed);
  }

  /// Emit an integer op reading the int8 twin of op.input and writing the
  /// int8 twin of op.output.
  void emit_qop(Op::Kind kind, const Op& op, const quant::StepQuant& rec, QStepData qd,
                bool alias_safe = false) {
    Op lowered = make_op(kind, int8_id(op.input), int8_id(op.output),
                         add_qdata(std::move(qd)));
    lowered.layer = op.layer;
    lowered.alpha = op.alpha;
    lowered.alias_safe = alias_safe;
    push(std::move(lowered));
    set_content(op.output, rec.out, /*int8_domain=*/true);
  }

  void lower_op(const Op& op, const quant::StepQuant& rec) {
    using StepOp = quant::StepOp;
    switch (rec.op) {
      case StepOp::kConv2d: {
        const auto* conv = dynamic_cast<const nn::Conv2d*>(op.layer);
        if (conv == nullptr)
          throw std::logic_error("Int8Lowering: '" + rec.name + "' is not a Conv2d");
        ensure_int8(op.input);
        check_input_grid(op.input, rec);
        QStepData qd;
        qd.in_a = rec.in;
        qd.out = rec.out;
        const auto& o = conv->options();
        qd.in_c = o.in_channels;
        qd.out_c = o.out_channels;
        qd.kernel = o.kernel;
        qd.stride = o.stride;
        qd.pad = o.effective_padding();
        pack_conv_weights(rec, o.out_channels, qd);
        emit_qop(Op::Kind::kQConv, op, rec, std::move(qd));
        break;
      }
      case StepOp::kDepthwise: {
        const auto* dw = dynamic_cast<const nn::DepthwiseConv2d*>(op.layer);
        if (dw == nullptr)
          throw std::logic_error("Int8Lowering: '" + rec.name + "' is not a DepthwiseConv2d");
        ensure_int8(op.input);
        check_input_grid(op.input, rec);
        QStepData qd;
        qd.in_a = rec.in;
        qd.out = rec.out;
        const auto& o = dw->options();
        qd.in_c = o.channels;
        qd.out_c = o.channels;
        qd.kernel = o.kernel;
        qd.stride = o.stride;
        qd.pad = o.effective_padding();
        pack_weights(rec, o.channels, qd);
        emit_qop(Op::Kind::kQDepthwise, op, rec, std::move(qd));
        break;
      }
      case StepOp::kLinear: {
        if (dynamic_cast<const nn::Linear*>(op.layer) == nullptr)
          throw std::logic_error("Int8Lowering: '" + rec.name + "' is not a Linear");
        ensure_int8(op.input);
        check_input_grid(op.input, rec);
        QStepData qd;
        qd.in_a = rec.in;
        qd.out = rec.out;
        qd.in_c = shape_of(op.input)[1];    // [N, in_features]
        qd.out_c = shape_of(op.output)[1];  // [N, out_features]
        pack_weights(rec, qd.out_c, qd);
        emit_qop(Op::Kind::kQLinear, op, rec, std::move(qd));
        break;
      }
      case StepOp::kActivation: {
        ensure_int8(op.input);
        check_input_grid(op.input, rec);
        emit_qop(Op::Kind::kQActivation, op, rec, activation_qdata(op, rec),
                 /*alias_safe=*/true);
        break;
      }
      case StepOp::kDepthToSpace: {
        ensure_int8(op.input);
        QStepData qd;
        qd.in_a = state(op.input).qp;
        qd.out = rec.out;
        qd.block = shape_of(op.output)[2] / shape_of(op.input)[2];
        emit_qop(Op::Kind::kQDepthToSpace, op, rec, std::move(qd));
        break;
      }
      case StepOp::kTileChannels: {
        ensure_int8(op.input);
        QStepData qd;
        qd.in_a = state(op.input).qp;
        qd.out = rec.out;
        qd.times = shape_of(op.output)[1] / shape_of(op.input)[1];
        emit_qop(Op::Kind::kQTileChannels, op, rec, std::move(qd));
        break;
      }
      case StepOp::kAdd: {
        // dst (op.output) += src (op.input), requantised onto rec.out.
        ensure_int8(op.output);
        ensure_int8(op.input);
        QStepData qd;
        qd.in_a = state(op.output).qp;
        qd.in_b = state(op.input).qp;
        qd.out = rec.out;
        qd.m_a = static_cast<double>(qd.in_a.scale) / rec.out.scale;
        qd.m_b = static_cast<double>(qd.in_b.scale) / rec.out.scale;
        qd.add_lut.resize(256 * 256);
        int8_add_build_lut(qd.in_a.zero_point, qd.m_a, qd.in_b.zero_point, qd.m_b,
                           rec.out.zero_point, qd.add_lut.data());
        push(make_op(Op::Kind::kQAdd, int8_id(op.input), int8_id(op.output),
                     add_qdata(std::move(qd))));
        set_content(op.output, rec.out, /*int8_domain=*/true);
        break;
      }
      case StepOp::kScale: {
        ensure_int8(op.output);
        QStepData qd;
        qd.in_a = state(op.output).qp;
        qd.out = rec.out;
        qd.m_a = static_cast<double>(op.alpha) * qd.in_a.scale / rec.out.scale;
        Op lowered = make_op(Op::Kind::kQScale, -1, int8_id(op.output),
                             add_qdata(std::move(qd)));
        lowered.alpha = op.alpha;
        push(std::move(lowered));
        set_content(op.output, rec.out, /*int8_domain=*/true);
        break;
      }
      case StepOp::kConcat: {
        QStepData qd;
        qd.out = rec.out;
        Op lowered = make_op(Op::Kind::kQConcat, -1, -1, -1);
        for (int src : op.sources) {
          ensure_int8(src);
          qd.src_qp.push_back(state(src).qp);
          lowered.sources.push_back(int8_id(src));
        }
        lowered.output = int8_id(op.output);
        lowered.qdata = add_qdata(std::move(qd));
        push(std::move(lowered));
        set_content(op.output, rec.out, /*int8_domain=*/true);
        break;
      }
      case StepOp::kFallback: {
        // No integer kernel: run the float kernel on dequantised activations
        // and round the result onto its calibrated grid — fake-quant-on-float.
        const int in = on_grid_float(op.input);
        const int out = state(op.output).float_id;
        Op fallback = make_op(Op::Kind::kLayer, in, out, -1);
        fallback.layer = op.layer;
        fallback.alpha = op.alpha;
        // Not alias-safe even for pointwise layers: `in` may be the shared
        // input shadow, which other fallback readers of buffer 0 reuse.
        push(std::move(fallback));
        QStepData qd;
        qd.out = rec.out;
        push(make_op(Op::Kind::kFakeQuant, -1, out, add_qdata(std::move(qd))));
        set_content(op.output, rec.out, /*int8_domain=*/false);
        break;
      }
    }
  }

  [[nodiscard]] QStepData activation_qdata(const Op& op, const quant::StepQuant& rec) const {
    QStepData qd;
    qd.in_a = rec.in;
    qd.out = rec.out;
    const double s_ratio =
        static_cast<double>(rec.in.scale) / static_cast<double>(rec.out.scale);
    qd.pos = s_ratio;
    if (dynamic_cast<const nn::ReLU*>(op.layer) != nullptr) {
      qd.neg = 0.0;
    } else if (dynamic_cast<const nn::ReLU6*>(op.layer) != nullptr) {
      qd.neg = 0.0;
      const auto cap = static_cast<int32_t>(
          std::lround(6.0 / rec.out.scale) + rec.out.zero_point);
      qd.out_cap = std::min<int32_t>(127, cap);
    } else if (const auto* leaky = dynamic_cast<const nn::LeakyReLU*>(op.layer)) {
      qd.neg = static_cast<double>(leaky->slope()) * s_ratio;
    } else if (const auto* prelu = dynamic_cast<const nn::PReLU*>(op.layer)) {
      // parameters() is logically const (see Module::num_params).
      const Tensor& slopes =
          const_cast<nn::PReLU*>(prelu)->parameters().front()->value;
      qd.neg_per_channel.resize(static_cast<size_t>(slopes.numel()));
      for (int64_t c = 0; c < slopes.numel(); ++c)
        qd.neg_per_channel[static_cast<size_t>(c)] =
            static_cast<double>(slopes[c]) * s_ratio;
    } else {
      throw std::logic_error("Int8Lowering: unsupported activation '" + rec.name + "'");
    }
    return qd;
  }

  [[nodiscard]] const Shape& shape_of(int id) const {
    return src_.buffers_[static_cast<size_t>(id)].shape;
  }

  const Program& src_;
  const quant::QuantizedModel& artifact_;
  Program& dst_;
  std::vector<BufferState> states_;
  int input_shadow_ = -1;  // on-grid float view of the (read-only) program input
};

std::shared_ptr<const Program> Program::compile_int8(const nn::Module& module,
                                                     const Shape& input,
                                                     const quant::QuantizedModel& artifact,
                                                     const PassConfig& passes) {
  // The lowering consumes the RAW float program: its one-op-per-record
  // mapping against the artifact is the contract. Passes run on the lowered
  // int8 program instead.
  const auto float_program = compile(module, input, PassConfig::none());
  std::shared_ptr<Program> program(new Program());
  Int8Lowering lowering(*float_program, artifact, *program);
  lowering.run();
  run_passes(*program, passes);
  return program;
}

}  // namespace sesr::runtime
