#include "runtime/program.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "nn/inference.h"
#include "obs/profile.h"
#include "runtime/passes/passes.h"

namespace sesr::runtime {

/// The nn::InferenceBuilder implementation behind Program::compile. Emits the
/// raw one-op-per-module-step program: every pointwise op gets a fresh
/// (alias-safe) output buffer — aliasing decisions belong to the in-place
/// election pass, which has whole-program liveness instead of the builder's
/// single-pass view. pin() survives purely as a write guard: composites still
/// declare buffers they re-read, and emit_add / emit_scale refuse to mutate
/// them (or the read-only program input).
class ProgramBuilder final : public nn::InferenceBuilder {
 public:
  explicit ProgramBuilder(Program& program, const Shape& input) : program_(program) {
    program_.buffers_.push_back({input, DType::kFloat32, {}, -1});
    pinned_.insert(0);  // the program input aliases the caller's (const) tensor
  }

  int emit_layer(const nn::Module& layer, int input) override {
    const int output = add_buffer(layer.trace(shape_of(input), nullptr));
    push_layer(layer, input, output, /*alias_safe=*/false);
    return output;
  }

  int emit_pointwise(const nn::Module& layer, int input) override {
    const Shape out_shape = layer.trace(shape_of(input), nullptr);
    const bool alias_safe = out_shape == shape_of(input);
    const int output = add_buffer(out_shape);
    push_layer(layer, input, output, alias_safe);
    return output;
  }

  void emit_add(int dst, int src) override {
    check_writable(dst, "emit_add");
    if (shape_of(dst) != shape_of(src))
      throw std::logic_error("ProgramBuilder::emit_add: shape mismatch " +
                             shape_of(dst).to_string() + " vs " + shape_of(src).to_string());
    Op op;
    op.kind = Op::Kind::kAdd;
    op.input = src;
    op.output = dst;
    program_.ops_.push_back(std::move(op));
  }

  void emit_scale(int dst, float alpha) override {
    check_writable(dst, "emit_scale");
    Op op;
    op.kind = Op::Kind::kScale;
    op.output = dst;
    op.alpha = alpha;
    program_.ops_.push_back(std::move(op));
  }

  int emit_concat(const std::vector<int>& srcs) override {
    if (srcs.empty()) throw std::logic_error("ProgramBuilder::emit_concat: no sources");
    const Shape& first = shape_of(srcs.front());
    int64_t total_c = 0;
    for (int src : srcs) {
      const Shape& s = shape_of(src);
      if (s.ndim() != 4 || s[0] != first[0] || s[2] != first[2] || s[3] != first[3])
        throw std::logic_error("ProgramBuilder::emit_concat: incompatible source " +
                               s.to_string());
      total_c += s[1];
    }
    const int output = add_buffer({first[0], total_c, first[2], first[3]});
    Op op;
    op.kind = Op::Kind::kConcat;
    op.output = output;
    op.sources = srcs;
    program_.ops_.push_back(std::move(op));
    return output;
  }

  void pin(int buffer) override { pinned_.insert(buffer); }

  [[nodiscard]] const Shape& buffer_shape(int buffer) const override { return shape_of(buffer); }

 private:
  void push_layer(const nn::Module& layer, int input, int output, bool alias_safe) {
    Op op;
    op.kind = Op::Kind::kLayer;
    op.layer = &layer;
    op.input = input;
    op.output = output;
    op.alias_safe = alias_safe;
    program_.ops_.push_back(std::move(op));
  }

  int add_buffer(Shape shape) {
    program_.buffers_.push_back({std::move(shape), DType::kFloat32, {}, -1});
    return static_cast<int>(program_.buffers_.size()) - 1;
  }

  [[nodiscard]] const Shape& shape_of(int buffer) const {
    if (buffer < 0 || buffer >= static_cast<int>(program_.buffers_.size()))
      throw std::logic_error("ProgramBuilder: unknown buffer id " + std::to_string(buffer));
    return program_.buffers_[static_cast<size_t>(buffer)].shape;
  }

  void check_writable(int buffer, const char* op) const {
    static_cast<void>(shape_of(buffer));  // bounds check
    if (pinned_.count(buffer) != 0)
      throw std::logic_error(std::string("ProgramBuilder::") + op + ": buffer " +
                             std::to_string(buffer) +
                             " is pinned (or the program input) and cannot be written");
  }

  Program& program_;
  std::unordered_set<int> pinned_;
};

bool op_reads_output(Op::Kind kind) {
  switch (kind) {
    case Op::Kind::kAdd:
    case Op::Kind::kScale:
    case Op::Kind::kFakeQuant:
    case Op::Kind::kQAdd:
    case Op::Kind::kQScale:
      return true;
    default:
      return false;
  }
}

const char* op_kind_name(Op::Kind kind) {
  switch (kind) {
    case Op::Kind::kLayer: return "layer";
    case Op::Kind::kAdd: return "add";
    case Op::Kind::kScale: return "scale";
    case Op::Kind::kConcat: return "concat";
    case Op::Kind::kQuantize: return "quantize";
    case Op::Kind::kDequantize: return "dequantize";
    case Op::Kind::kFakeQuant: return "fake_quant";
    case Op::Kind::kQConv: return "qconv";
    case Op::Kind::kQDepthwise: return "qdepthwise";
    case Op::Kind::kQLinear: return "qlinear";
    case Op::Kind::kQActivation: return "qactivation";
    case Op::Kind::kQAdd: return "qadd";
    case Op::Kind::kQScale: return "qscale";
    case Op::Kind::kQConcat: return "qconcat";
    case Op::Kind::kQDepthToSpace: return "qdepth2space";
    case Op::Kind::kQTileChannels: return "qtile";
  }
  return "?";
}

std::string step_identity(const Op& op) {
  switch (op.kind) {
    case Op::Kind::kLayer:
      return op.layer->name();
    case Op::Kind::kAdd:
      return "add";
    case Op::Kind::kScale:
      return "scale";
    case Op::Kind::kConcat:
      return "concat";
    default:
      throw std::logic_error("step_identity: float-program ops only");
  }
}

std::shared_ptr<const Program> Program::compile(const nn::Module& module, const Shape& input,
                                                const PassConfig& passes) {
  if (!module.supports_compiled_inference())
    throw std::invalid_argument("Program::compile: " + module.name() +
                                " does not support compiled inference");
  const Shape expected = module.trace(input, nullptr);  // validates the shape up front

  std::shared_ptr<Program> program(new Program());
  ProgramBuilder builder(*program, input);
  program->output_ = module.compile_inference(builder, 0);
  if (program->output_shape() != expected)
    throw std::logic_error("Program::compile: " + module.name() + " compiled to output " +
                           program->output_shape().to_string() + " but trace() promises " +
                           expected.to_string());
  run_passes(*program, passes);
  return program;
}

// ---- dump ------------------------------------------------------------------

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string human_bytes(int64_t bytes) {
  char buf[32];
  if (bytes >= 1 << 20)
    std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(bytes) / (1 << 20));
  else if (bytes >= 1 << 10)
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(bytes) / (1 << 10));
  else
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  return buf;
}

}  // namespace

std::string Program::dump() const {
  std::string out;
  appendf(out, "program: %s, %zu ops, %zu buffers, input %s -> output %s (b%d)\n",
          precision_ == Precision::kInt8 ? "int8" : "fp32", ops_.size(), buffers_.size(),
          input_shape().to_string().c_str(), output_shape().to_string().c_str(), output_);
  appendf(out, "passes: %lld conv+act fused, %lld dead ops removed, %lld in-place elected\n",
          static_cast<long long>(stats_.fused_activations),
          static_cast<long long>(stats_.dead_ops_removed),
          static_cast<long long>(stats_.in_place_elected));
  appendf(out, "kernels: %s (%s)\n", simd::variant_name(kernel_variant_),
          kernel_variant_forced_ ? "forced via SESR_KERNEL_VARIANT" : "native");
  if (kernel_variant_ == simd::KernelVariant::kJit)
    appendf(out, "jit: %lld ops patched, %s code, compiled in %.2f ms\n",
            static_cast<long long>(jit_ops_), human_bytes(jit_code_bytes_).c_str(),
            jit_compile_ms_);
  const int64_t sum = sum_buffer_bytes();
  appendf(out, "arena: peak %s of %s one-buffer-per-tensor (%.0f%% saved)\n",
          human_bytes(arena_bytes_).c_str(), human_bytes(sum).c_str(),
          sum > 0 ? 100.0 * (1.0 - static_cast<double>(arena_bytes_) /
                                       static_cast<double>(sum))
                  : 0.0);

  out += "buffers:\n";
  for (size_t i = 0; i < buffers_.size(); ++i) {
    const BufferInfo& b = buffers_[i];
    appendf(out, "  b%-3zu %-4s %-18s", i, b.dtype == DType::kInt8 ? "i8" : "f32",
            b.shape.to_string().c_str());
    if (b.dtype == DType::kInt8)
      appendf(out, " grid(s=%.3g z=%d)", static_cast<double>(b.grid.scale),
              b.grid.zero_point);
    if (is_external(static_cast<int>(i)))
      appendf(out, "  external (%s)", i == 0 ? "input" : "output");
    else if (b.arena_offset >= 0)
      appendf(out, "  arena @%-8lld %s", static_cast<long long>(b.arena_offset),
              human_bytes(b.size_bytes()).c_str());
    else
      out += "  unused";
    out += "\n";
  }

  out += "ops:\n";
  for (size_t k = 0; k < ops_.size(); ++k) {
    const Op& op = ops_[k];
    appendf(out, "  %3zu: %-12s", k, op_kind_name(op.kind));
    if (op.layer != nullptr) appendf(out, " %-18s", op.layer->name().c_str());
    if (!op.sources.empty()) {
      out += " [";
      for (size_t s = 0; s < op.sources.size(); ++s)
        appendf(out, "%sb%d", s == 0 ? "" : ", ", op.sources[s]);
      appendf(out, "] -> b%d", op.output);
    } else if (op.input >= 0 && op.input != op.output) {
      appendf(out, " b%d -> b%d", op.input, op.output);
    } else {
      appendf(out, " b%d in place", op.output);
    }
    if (op.kind == Op::Kind::kScale) appendf(out, " (x %g)", static_cast<double>(op.alpha));
    if (op.fused_layer != nullptr)
      appendf(out, "  + fused %s", op.fused_layer->name().c_str());
    if (op.qdata >= 0) {
      const QStepData& q = qdata_[static_cast<size_t>(op.qdata)];
      if (op.kind == Op::Kind::kQConv || op.kind == Op::Kind::kQDepthwise)
        appendf(out, "  k=%lld s=%lld p=%lld", static_cast<long long>(q.kernel),
                static_cast<long long>(q.stride), static_cast<long long>(q.pad));
      if (!q.act_lut.empty()) appendf(out, "  + fused lut x%lld",
                                      static_cast<long long>(q.act_lut_channels));
    }
    // jit-compiled ops include kinds (kQAdd) the dispatch table never serves;
    // annotate those too so the per-op tier report is complete.
    if (op.dispatched || op.jit >= 0)
      appendf(out, "  [%s]", simd::variant_name(op.variant));
    out += "\n";
  }
  out += profile_summary();
  return out;
}

// ---- per-op profiling ------------------------------------------------------

obs::ProgramProfile& Program::profile() const {
  std::lock_guard<std::mutex> lock(profile_mutex_);
  if (!profile_) {
    std::vector<obs::OpProfileInfo> info;
    info.reserve(ops_.size());
    for (const Op& op : ops_) {
      obs::OpProfileInfo entry;
      entry.name = op_kind_name(op.kind);
      entry.tier = op.jit >= 0 ? "jit" : simd::variant_name(op.variant);
      info.push_back(std::move(entry));
    }
    profile_ = std::make_shared<obs::ProgramProfile>(std::move(info));
  }
  return *profile_;
}

obs::ProgramProfile* Program::existing_profile() const {
  std::lock_guard<std::mutex> lock(profile_mutex_);
  return profile_.get();
}

std::string Program::profile_summary() const {
  const obs::ProgramProfile* profile = existing_profile();
  if (profile == nullptr) return {};

  struct HotOp {
    size_t index;
    obs::OpProfileRow row;
  };
  std::vector<HotOp> hot;
  int64_t total_ns = 0;
  for (size_t op = 0; op < profile->size(); ++op) {
    obs::OpProfileRow row = profile->row(op);
    if (row.calls == 0) continue;
    total_ns += row.ns;
    hot.push_back({op, std::move(row)});
  }
  if (hot.empty()) return {};
  std::sort(hot.begin(), hot.end(),
            [](const HotOp& a, const HotOp& b) { return a.row.ns > b.row.ns; });

  std::string out;
  appendf(out, "profile: %lld sampled runs, %.2f ms total, hottest ops:\n",
          static_cast<long long>(profile->runs_sampled()), static_cast<double>(total_ns) / 1e6);
  const size_t shown = std::min<size_t>(hot.size(), 10);
  for (size_t i = 0; i < shown; ++i) {
    const HotOp& entry = hot[i];
    appendf(out, "  %3zu: %-12s [%-10s] %8lld calls  %10.2f us total  %8.2f us/call  %5.1f%%\n",
            entry.index, entry.row.name.c_str(), entry.row.tier.c_str(),
            static_cast<long long>(entry.row.calls), static_cast<double>(entry.row.ns) / 1e3,
            static_cast<double>(entry.row.ns) / 1e3 / static_cast<double>(entry.row.calls),
            total_ns > 0 ? 100.0 * static_cast<double>(entry.row.ns) / static_cast<double>(total_ns)
                         : 0.0);
  }
  return out;
}

}  // namespace sesr::runtime
