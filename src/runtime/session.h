// Execution context for a compiled InferencePlan.
//
// A Session owns everything mutable about inference — the arena of
// preallocated activation buffers (float, plus int8 twins for quantised
// plans) and the scratch Workspace — while the plan and the model weights
// stay shared and read-only. run()/run_into() are therefore stateless per
// call: after the first (warm-up) run a session performs zero heap
// allocations, and N sessions over one shared plan serve N requests
// concurrently from a thread pool without any locking. The same Session API
// executes both precisions; int8 plans consume and produce float tensors at
// the boundary (quantise-in / dequantise-out steps are part of the plan).
//
// A single Session is NOT thread-safe; give each serving thread its own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/plan.h"
#include "tensor/workspace.h"

namespace sesr::runtime {

class Session {
 public:
  explicit Session(std::shared_ptr<const InferencePlan> plan);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Run the plan on `input` (shape must equal plan().input_shape()) and
  /// return the freshly-allocated result. Bit-identical to the compiled
  /// module's forward() for float plans.
  [[nodiscard]] Tensor run(const Tensor& input);

  /// Allocation-free variant: writes the result into `output` (reshaped if
  /// needed). `output` must not alias `input`.
  void run_into(const Tensor& input, Tensor& output);

  /// Per-step hook: invoked after each plan step with the step index and a
  /// mutable view of that step's output buffer. The quant subsystem uses it
  /// for calibration (range observation) and for the fake-quant reference
  /// executor (rounding each activation onto its int8 grid). Float plans
  /// only.
  using StepHook = std::function<void(int step, Tensor& output)>;
  void run_hooked(const Tensor& input, Tensor& output, const StepHook& hook);

  [[nodiscard]] const InferencePlan& plan() const { return *plan_; }

  /// Scratch high-water mark (floats); stabilises after the first run.
  [[nodiscard]] int64_t workspace_capacity() const { return workspace_.capacity(); }

 private:
  void execute(const Tensor& input, Tensor& output, const StepHook* hook);

  std::shared_ptr<const InferencePlan> plan_;
  std::vector<Tensor> buffers_;      // session-owned activations, sized once
  std::vector<Tensor*> bound_;       // per-run buffer table (input/output rebound)
  std::vector<std::vector<int8_t>> qbuffers_;  // int8 twins (quantised plans)
  Workspace workspace_;
};

}  // namespace sesr::runtime
