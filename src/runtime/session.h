// Execution context for a compiled InferencePlan.
//
// A Session owns everything mutable about inference — the arena of
// preallocated activation buffers and the scratch Workspace — while the plan
// and the model weights stay shared and read-only. run()/run_into() are
// therefore stateless per call: after the first (warm-up) run a session
// performs zero heap allocations, and N sessions over one shared plan serve
// N requests concurrently from a thread pool without any locking.
//
// A single Session is NOT thread-safe; give each serving thread its own.
#pragma once

#include <memory>
#include <vector>

#include "runtime/plan.h"
#include "tensor/workspace.h"

namespace sesr::runtime {

class Session {
 public:
  explicit Session(std::shared_ptr<const InferencePlan> plan);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Run the plan on `input` (shape must equal plan().input_shape()) and
  /// return the freshly-allocated result. Bit-identical to the compiled
  /// module's forward().
  [[nodiscard]] Tensor run(const Tensor& input);

  /// Allocation-free variant: writes the result into `output` (reshaped if
  /// needed). `output` must not alias `input`.
  void run_into(const Tensor& input, Tensor& output);

  [[nodiscard]] const InferencePlan& plan() const { return *plan_; }

  /// Scratch high-water mark (floats); stabilises after the first run.
  [[nodiscard]] int64_t workspace_capacity() const { return workspace_.capacity(); }

 private:
  std::shared_ptr<const InferencePlan> plan_;
  std::vector<Tensor> buffers_;      // session-owned activations, sized once
  std::vector<Tensor*> bound_;       // per-run buffer table (input/output rebound)
  Workspace workspace_;
};

}  // namespace sesr::runtime
