// Execution context for a compiled runtime::Program.
//
// A Session owns everything mutable about inference — one contiguous
// activation arena of program.peak_arena_bytes() (every intermediate buffer
// is a dtype-typed window at its planner-assigned offset) and the scratch
// Workspace — while the program and the model weights stay shared and
// read-only. run()/run_into() are therefore stateless per call: after the
// first (warm-up) run a session performs zero heap allocations, and N
// sessions over one shared program serve N requests concurrently from a
// thread pool without any locking. The same Session API executes both
// precisions; int8 programs consume and produce float tensors at the
// boundary (quantise-in / dequantise-out ops are part of the program).
//
// A single Session is NOT thread-safe; give each serving thread its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "runtime/program.h"
#include "tensor/workspace.h"

namespace sesr::runtime {

class Session {
 public:
  explicit Session(std::shared_ptr<const Program> program);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Run the program on `input` (shape must equal program().input_shape())
  /// and return the freshly-allocated result. Bit-identical to the compiled
  /// module's forward() for float programs.
  [[nodiscard]] Tensor run(const Tensor& input);

  /// Allocation-free variant: writes the result into `output` (reshaped if
  /// needed). `output` must not alias `input`.
  void run_into(const Tensor& input, Tensor& output);

  /// Batch dispatch hook for the serving engine: run the program on a
  /// batched [N, ...] input and scatter sample i into per_sample[i] (shaped
  /// [1, ...]; existing contents replaced). The batched result lands in a
  /// staging tensor the session reuses across calls, so a steady-state
  /// batched dispatch allocates nothing beyond the per-sample outputs.
  /// per_sample.size() must equal the program's batch extent; 4-D (NCHW)
  /// programs only.
  void run_scatter(const Tensor& input, std::span<Tensor> per_sample);

  /// Per-op hook: invoked after each op with the op index and a mutable view
  /// of that op's output buffer. The quant subsystem uses it for calibration
  /// (range observation) over raw (PassConfig::none) float programs, whose
  /// op order mirrors the artifact's record order. Float programs only.
  using StepHook = std::function<void(int step, Tensor& output)>;
  void run_hooked(const Tensor& input, Tensor& output, const StepHook& hook);

  [[nodiscard]] const Program& plan() const { return *program_; }

  /// Scratch high-water mark (floats); stabilises after the first run.
  [[nodiscard]] int64_t workspace_capacity() const { return workspace_.capacity(); }

 private:
  void execute(const Tensor& input, Tensor& output, const StepHook* hook);

  std::shared_ptr<const Program> program_;
  std::unique_ptr<std::byte[]> arena_;   // one slab; 64-byte-aligned base
  std::vector<Tensor> views_;            // float windows into the arena, per buffer id
  std::vector<int8_t*> int8_;            // int8 windows into the arena, per buffer id
  std::vector<Tensor*> bound_;           // per-run float binding (input/output rebound)
  Tensor staging_;                       // batched output reused by run_scatter
  Workspace workspace_;
};

}  // namespace sesr::runtime
