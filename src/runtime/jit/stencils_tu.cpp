// Stencil translation unit — NOT part of the library build.
//
// CMake compiles this file out-of-band, once per ISA flavor, with
//   -fno-pic -fno-pie -mcmodel=large -ffunction-sections -fdata-sections
//   -fno-jump-tables -fno-stack-protector -fno-asynchronous-unwind-tables
//   -fomit-frame-pointer -fno-exceptions -fno-rtti
// plus the flavor's -m ISA flags, then runs tools/stencilgen over the
// resulting .o to extract every sesr_jit_stencil_* function's bytes and
// R_X86_64_64 relocation sites into a generated .inc table
// (src/runtime/jit/stencil.h documents the whole contract).
//
// Rules this file must obey so the extracted code is position-independent
// and self-contained:
//  - no calls: every helper is force-inlined; no memset-able aggregate
//    initialisation, no std:: functions except fixed-size __builtin_memcpy
//    (which lowers to a register move);
//  - no exceptions, no RTTI, no thread-locals, no switch tables;
//  - constants are fine (they become .rodata section relocations the
//    generator embeds), but keep them small;
//  - runtime inputs arrive via the two pointer parameters; everything else
//    is read through SESR_HOLE_* — an opaque extern-symbol address the
//    patcher overwrites with the concrete value.
//
// Exactness: the int8 conv stencils accumulate the same int32 sums as the
// scalar reference (integer addition is associative), and the fused requant
// reproduces FixedPointMultiplier::apply exactly — the vnni flavor with
// 64-bit arithmetic shifts (as tensor/simd/kernels_avx512.cpp), the avx2
// flavor with the bias-to-non-negative logical-shift trick (as
// kernels_avx2.cpp), the scalar flavor with the int64 formula itself.

#include <cstdint>

#if defined(SESR_STENCIL_ISA_AVX2) || defined(SESR_STENCIL_ISA_VNNI) || \
    defined(SESR_STENCIL_ISA_VBMI)
#include <immintrin.h>
#endif

#ifndef SESR_STENCIL_SUFFIX
#error "compile with -DSESR_STENCIL_SUFFIX=_<flavor>"
#endif

// ---- hole plumbing ---------------------------------------------------------

extern "C" {
extern const char sesr_jit_hole_0[];
extern const char sesr_jit_hole_1[];
extern const char sesr_jit_hole_2[];
extern const char sesr_jit_hole_3[];
extern const char sesr_jit_hole_4[];
extern const char sesr_jit_hole_5[];
extern const char sesr_jit_hole_6[];
extern const char sesr_jit_hole_7[];
extern const char sesr_jit_hole_8[];
extern const char sesr_jit_hole_9[];
extern const char sesr_jit_hole_10[];
extern const char sesr_jit_hole_11[];
extern const char sesr_jit_hole_12[];
extern const char sesr_jit_hole_13[];
extern const char sesr_jit_hole_14[];
extern const char sesr_jit_hole_15[];
extern const char sesr_jit_hole_16[];
extern const char sesr_jit_hole_17[];
extern const char sesr_jit_hole_18[];
extern const char sesr_jit_hole_19[];
extern const char sesr_jit_hole_20[];
extern const char sesr_jit_hole_21[];
extern const char sesr_jit_hole_22[];
extern const char sesr_jit_hole_23[];
extern const char sesr_jit_hole_24[];
extern const char sesr_jit_hole_25[];
extern const char sesr_jit_hole_26[];
extern const char sesr_jit_hole_27[];
extern const char sesr_jit_hole_28[];
}

#define SESR_HOLE_ADDR(n) (sesr_jit_hole_##n)
#define SESR_HOLE_PTR(T, n) reinterpret_cast<const T*>(SESR_HOLE_ADDR(n))
#define SESR_HOLE_U64(n) reinterpret_cast<uint64_t>(SESR_HOLE_ADDR(n))
#define SESR_HOLE_I64(n) static_cast<int64_t>(SESR_HOLE_U64(n))
#define SESR_HOLE_I32(n) static_cast<int32_t>(SESR_HOLE_I64(n))

#define SESR_CAT2(a, b) a##b
#define SESR_CAT(a, b) SESR_CAT2(a, b)
#define SESR_STENCIL(base) \
  SESR_CAT(SESR_CAT(sesr_jit_stencil_, base), SESR_STENCIL_SUFFIX)

#define SESR_INLINE [[gnu::always_inline]] inline

namespace {

// Per-row hole accessors (hole ids must be literal tokens, so constexpr-r
// indexing goes through these dispatch templates — fully folded at -O3).
template <int r>
SESR_INLINE const int16_t* conv_w_hole() {
  if constexpr (r == 0) return SESR_HOLE_PTR(int16_t, 0);
  else if constexpr (r == 1) return SESR_HOLE_PTR(int16_t, 1);
  else if constexpr (r == 2) return SESR_HOLE_PTR(int16_t, 2);
  else return SESR_HOLE_PTR(int16_t, 3);
}
template <int r>
SESR_INLINE int32_t conv_bias_hole() {
  if constexpr (r == 0) return SESR_HOLE_I32(8);
  else if constexpr (r == 1) return SESR_HOLE_I32(9);
  else if constexpr (r == 2) return SESR_HOLE_I32(10);
  else return SESR_HOLE_I32(11);
}
template <int r>
SESR_INLINE int64_t conv_mult_hole() {
  if constexpr (r == 0) return SESR_HOLE_I64(12);
  else if constexpr (r == 1) return SESR_HOLE_I64(13);
  else if constexpr (r == 2) return SESR_HOLE_I64(14);
  else return SESR_HOLE_I64(15);
}
template <int r>
SESR_INLINE int64_t conv_nudge_hole() {
  if constexpr (r == 0) return SESR_HOLE_I64(16);
  else if constexpr (r == 1) return SESR_HOLE_I64(17);
  else if constexpr (r == 2) return SESR_HOLE_I64(18);
  else return SESR_HOLE_I64(19);
}
template <int r>
SESR_INLINE int conv_total_hole() {
  if constexpr (r == 0) return static_cast<int>(SESR_HOLE_I64(20));
  else if constexpr (r == 1) return static_cast<int>(SESR_HOLE_I64(21));
  else if constexpr (r == 2) return static_cast<int>(SESR_HOLE_I64(22));
  else return static_cast<int>(SESR_HOLE_I64(23));
}
template <int r>
SESR_INLINE const int8_t* conv_act_hole() {
  if constexpr (r == 0) return SESR_HOLE_PTR(int8_t, 25);
  else if constexpr (r == 1) return SESR_HOLE_PTR(int8_t, 26);
  else if constexpr (r == 2) return SESR_HOLE_PTR(int8_t, 27);
  else return SESR_HOLE_PTR(int8_t, 28);
}

SESR_INLINE int64_t conv_ic_stride() { return SESR_HOLE_I64(4); }
SESR_INLINE int64_t conv_row_stride() { return SESR_HOLE_I64(5); }
SESR_INLINE int64_t conv_in_c() { return SESR_HOLE_I64(6); }
SESR_INLINE int64_t conv_out_stride() { return SESR_HOLE_I64(7); }
SESR_INLINE int32_t conv_out_zero() { return SESR_HOLE_I32(24); }

SESR_INLINE int8_t sat8(int32_t v) {
  return static_cast<int8_t>(v < -128 ? -128 : (v > 127 ? 127 : v));
}

// ============================ scalar flavor =================================
#if defined(SESR_STENCIL_ISA_SCALAR)

template <int K, int IC, int R, bool kAct>
SESR_INLINE void conv16_body(const int16_t* img, int8_t* out) {
  constexpr int kPairs = (K + 1) / 2;
  constexpr int kCeil = 2 * kPairs;
  const int64_t ic_stride = conv_ic_stride();
  const int64_t row_stride = conv_row_stride();
  const int64_t in_c = IC > 0 ? IC : conv_in_c();
  const int64_t out_stride = conv_out_stride();
  const int32_t out_zero = conv_out_zero();

  int32_t acc[R][16];
  for (int r = 0; r < R; ++r)
    for (int b = 0; b < 16; ++b) acc[r][b] = 0;
  const int16_t* w[R];
  if constexpr (R > 0) w[0] = conv_w_hole<0>();
  if constexpr (R > 1) w[1] = conv_w_hole<1>();
  if constexpr (R > 2) w[2] = conv_w_hole<2>();
  if constexpr (R > 3) w[3] = conv_w_hole<3>();

  const int16_t* base = img;
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int kh = 0; kh < K; ++kh) {
      const int16_t* row = base + kh * row_stride;
      for (int p = 0; p < kPairs; ++p) {
        for (int r = 0; r < R; ++r) {
          const int32_t w0 = w[r][kh * kCeil + 2 * p];
          const int32_t w1 = w[r][kh * kCeil + 2 * p + 1];
          for (int b = 0; b < 16; ++b)
            acc[r][b] += w0 * row[b + 2 * p] + w1 * row[b + 2 * p + 1];
        }
      }
    }
    base += ic_stride;
    for (int r = 0; r < R; ++r) w[r] += K * kCeil;
  }

  auto requant_row = [&]<int r>() {
    const int32_t bias = conv_bias_hole<r>();
    const int64_t mult = conv_mult_hole<r>();
    const int64_t nudge = conv_nudge_hole<r>();
    const int total = conv_total_hole<r>();
    const int8_t* lut = kAct ? conv_act_hole<r>() : nullptr;
    int8_t* o = out + r * out_stride;
    for (int b = 0; b < 16; ++b) {
      const int32_t a = acc[r][b] + bias;
      const int64_t p = static_cast<int64_t>(a) * mult;
      const int32_t scaled = static_cast<int32_t>((p + nudge) >> total);
      const int8_t q = sat8(scaled + out_zero);
      o[b] = kAct ? lut[static_cast<int32_t>(q) + 128] : q;
    }
  };
  if constexpr (R > 0) requant_row.template operator()<0>();
  if constexpr (R > 1) requant_row.template operator()<1>();
  if constexpr (R > 2) requant_row.template operator()<2>();
  if constexpr (R > 3) requant_row.template operator()<3>();
}

extern "C" void SESR_STENCIL(lut256)(const int8_t* in, int8_t* out) {
  const int8_t* lut = SESR_HOLE_PTR(int8_t, 0);
  const int64_t n = SESR_HOLE_I64(1);
  for (int64_t i = 0; i < n; ++i) out[i] = lut[static_cast<int32_t>(in[i]) + 128];
}

extern "C" void SESR_STENCIL(add_lut)(const int8_t* a, const int8_t* b,
                                      int8_t* out) {
  const int8_t* lut = SESR_HOLE_PTR(int8_t, 0);
  const int64_t n = SESR_HOLE_I64(1);
  for (int64_t i = 0; i < n; ++i) {
    const int32_t row = (static_cast<int32_t>(a[i]) + 128) * 256;
    out[i] = lut[row + static_cast<int32_t>(b[i]) + 128];
  }
}

#endif  // SESR_STENCIL_ISA_SCALAR

// ============================ avx2 flavor ===================================
#if defined(SESR_STENCIL_ISA_AVX2)

// Requant 8 int32 accumulators (one __m256i) to 8 int16 (saturated), exactly
// as kernels_avx2.cpp: sign-extend to int64, 32x32->64 multiply, bias the
// rounded shift into non-negative range so the logical shift equals the
// arithmetic one, truncate, add zero point, saturating pack.
SESR_INLINE __m128i requant8_avx2(__m256i acc, int32_t bias, int64_t mult,
                                  int64_t nudge, int total, int32_t out_zero) {
  const __m256i a = _mm256_add_epi32(acc, _mm256_set1_epi32(bias));
  const __m256i lo64 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(a));
  const __m256i hi64 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(a, 1));
  const __m256i mul = _mm256_set1_epi64x(mult);
  const __m256i biasc = _mm256_set1_epi64x(nudge + (int64_t{1} << 62));
  const __m256i sub = _mm256_set1_epi64x((int64_t{1} << 62) >> total);
  const __m128i cnt = _mm_cvtsi32_si128(total);
  const __m256i plo = _mm256_sub_epi64(
      _mm256_srl_epi64(_mm256_add_epi64(_mm256_mul_epi32(lo64, mul), biasc), cnt), sub);
  const __m256i phi = _mm256_sub_epi64(
      _mm256_srl_epi64(_mm256_add_epi64(_mm256_mul_epi32(hi64, mul), biasc), cnt), sub);
  // Low 32 bits of each int64 lane, in element order.
  __m256i v = _mm256_castps_si256(
      _mm256_shuffle_ps(_mm256_castsi256_ps(plo), _mm256_castsi256_ps(phi), 0x88));
  v = _mm256_permute4x64_epi64(v, 0xD8);
  const __m256i q = _mm256_add_epi32(v, _mm256_set1_epi32(out_zero));
  return _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
}

template <int K, int IC, int R, bool kAct>
SESR_INLINE void conv16_body(const int16_t* img, int8_t* out) {
  constexpr int kPairs = (K + 1) / 2;
  constexpr int kCeil = 2 * kPairs;
  const int64_t ic_stride = conv_ic_stride();
  const int64_t row_stride = conv_row_stride();
  const int64_t in_c = IC > 0 ? IC : conv_in_c();
  const int64_t out_stride = conv_out_stride();
  const int32_t out_zero = conv_out_zero();

  __m256i lo[R], hi[R];
  for (int r = 0; r < R; ++r) {
    lo[r] = _mm256_setzero_si256();
    hi[r] = _mm256_setzero_si256();
  }
  const int16_t* w[R];
  if constexpr (R > 0) w[0] = conv_w_hole<0>();
  if constexpr (R > 1) w[1] = conv_w_hole<1>();
  if constexpr (R > 2) w[2] = conv_w_hole<2>();
  if constexpr (R > 3) w[3] = conv_w_hole<3>();

  const int16_t* base = img;
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int kh = 0; kh < K; ++kh) {
      const int16_t* row = base + kh * row_stride;
      for (int p = 0; p < kPairs; ++p) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * p));
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * p + 1));
        const __m256i u0 = _mm256_unpacklo_epi16(a, b);
        const __m256i u1 = _mm256_unpackhi_epi16(a, b);
        const __m256i p_lo = _mm256_permute2x128_si256(u0, u1, 0x20);
        const __m256i p_hi = _mm256_permute2x128_si256(u0, u1, 0x31);
        for (int r = 0; r < R; ++r) {
          int32_t wpair;
          __builtin_memcpy(&wpair, w[r] + kh * kCeil + 2 * p, sizeof(wpair));
          const __m256i wv = _mm256_set1_epi32(wpair);
          lo[r] = _mm256_add_epi32(lo[r], _mm256_madd_epi16(p_lo, wv));
          hi[r] = _mm256_add_epi32(hi[r], _mm256_madd_epi16(p_hi, wv));
        }
      }
    }
    base += ic_stride;
    for (int r = 0; r < R; ++r) w[r] += K * kCeil;
  }

  auto requant_row = [&]<int r>() {
    const int32_t bias = conv_bias_hole<r>();
    const int64_t mult = conv_mult_hole<r>();
    const int64_t nudge = conv_nudge_hole<r>();
    const int total = conv_total_hole<r>();
    const __m128i b0 = requant8_avx2(lo[r], bias, mult, nudge, total, out_zero);
    const __m128i b1 = requant8_avx2(hi[r], bias, mult, nudge, total, out_zero);
    const __m128i bytes = _mm_packs_epi16(b0, b1);
    int8_t* o = out + r * out_stride;
    if constexpr (kAct) {
      alignas(16) int8_t tmp[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), bytes);
      const int8_t* lut = conv_act_hole<r>();
      for (int t = 0; t < 16; ++t)
        o[t] = lut[static_cast<int32_t>(tmp[t]) + 128];
    } else {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(o), bytes);
    }
  };
  if constexpr (R > 0) requant_row.template operator()<0>();
  if constexpr (R > 1) requant_row.template operator()<1>();
  if constexpr (R > 2) requant_row.template operator()<2>();
  if constexpr (R > 3) requant_row.template operator()<3>();
}

#endif  // SESR_STENCIL_ISA_AVX2

// ============================ vnni flavor ===================================
#if defined(SESR_STENCIL_ISA_VNNI)

SESR_INLINE __m512i pair_index() {
  alignas(64) static constexpr int16_t idx[32] = {
      0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8,
      8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16};
  return _mm512_load_si512(idx);
}

template <int K, int IC, int R, bool kAct>
SESR_INLINE void conv16_body(const int16_t* img, int8_t* out) {
  constexpr int kPairs = (K + 1) / 2;
  constexpr int kCeil = 2 * kPairs;
  const int64_t ic_stride = conv_ic_stride();
  const int64_t row_stride = conv_row_stride();
  const int64_t in_c = IC > 0 ? IC : conv_in_c();
  const int64_t out_stride = conv_out_stride();
  const int32_t out_zero = conv_out_zero();

  const __m512i idx = pair_index();
  __m512i a[R];
  for (int r = 0; r < R; ++r) a[r] = _mm512_setzero_si512();
  const int16_t* w[R];
  if constexpr (R > 0) w[0] = conv_w_hole<0>();
  if constexpr (R > 1) w[1] = conv_w_hole<1>();
  if constexpr (R > 2) w[2] = conv_w_hole<2>();
  if constexpr (R > 3) w[3] = conv_w_hole<3>();

  const int16_t* base = img;
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int kh = 0; kh < K; ++kh) {
      const int16_t* row = base + kh * row_stride;
      for (int p = 0; p < kPairs; ++p) {
        const __m512i pairs =
            _mm512_permutexvar_epi16(idx, _mm512_loadu_si512(row + 2 * p));
        for (int r = 0; r < R; ++r) {
          int32_t wpair;
          __builtin_memcpy(&wpair, w[r] + kh * kCeil + 2 * p, sizeof(wpair));
          a[r] = _mm512_dpwssd_epi32(a[r], pairs, _mm512_set1_epi32(wpair));
        }
      }
    }
    base += ic_stride;
    for (int r = 0; r < R; ++r) w[r] += K * kCeil;
  }

  auto requant_row = [&]<int r>() {
    // Exactly kernels_avx512.cpp's int8_requant_row, on the live accumulator:
    // 64-bit lanes, arithmetic shift, truncating narrow. The uniform formula
    // also covers the degenerate encodings (multiplier == 0 patches p to 0
    // and the nudge shifts to 0; total == 0 patches nudge to 0 and shifts by
    // 0), so no fallback branch exists inside the stencil.
    const __m512i q32 = _mm512_add_epi32(a[r], _mm512_set1_epi32(conv_bias_hole<r>()));
    const __m512i mul = _mm512_set1_epi64(conv_mult_hole<r>());
    const __m512i nud = _mm512_set1_epi64(conv_nudge_hole<r>());
    const __m128i cnt = _mm_cvtsi32_si128(conv_total_hole<r>());
    const __m256i lo32 = _mm512_castsi512_si256(q32);
    const __m256i hi32 = _mm512_extracti64x4_epi64(q32, 1);
    const __m512i plo = _mm512_sra_epi64(
        _mm512_add_epi64(_mm512_mullo_epi64(_mm512_cvtepi32_epi64(lo32), mul), nud),
        cnt);
    const __m512i phi = _mm512_sra_epi64(
        _mm512_add_epi64(_mm512_mullo_epi64(_mm512_cvtepi32_epi64(hi32), mul), nud),
        cnt);
    const __m512i scaled = _mm512_inserti64x4(
        _mm512_castsi256_si512(_mm512_cvtepi64_epi32(plo)),
        _mm512_cvtepi64_epi32(phi), 1);
    const __m512i q = _mm512_add_epi32(scaled, _mm512_set1_epi32(out_zero));
    const __m128i bytes = _mm512_cvtsepi32_epi8(q);
    int8_t* o = out + r * out_stride;
    if constexpr (kAct) {
      alignas(16) int8_t tmp[16];
      _mm_store_si128(reinterpret_cast<__m128i*>(tmp), bytes);
      const int8_t* lut = conv_act_hole<r>();
      for (int t = 0; t < 16; ++t)
        o[t] = lut[static_cast<int32_t>(tmp[t]) + 128];
    } else {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(o), bytes);
    }
  };
  if constexpr (R > 0) requant_row.template operator()<0>();
  if constexpr (R > 1) requant_row.template operator()<1>();
  if constexpr (R > 2) requant_row.template operator()<2>();
  if constexpr (R > 3) requant_row.template operator()<3>();
}

// 32-column variant: two adjacent 16-column accumulator groups driven by one
// weight broadcast — halves the weight-load traffic per MAC and doubles the
// dpwssd in flight per accumulator chain, which is where the 16-column shape
// leaves the FMA ports idle. Needs 2R live accumulators (8 zmm at R = 4), so
// this family exists only in the 32-register AVX-512 flavor; column group j
// reads img + 16j and writes out + 16j, holes identical to conv16.
template <int K, int IC, int R, bool kAct>
SESR_INLINE void conv32_body(const int16_t* img, int8_t* out) {
  constexpr int kPairs = (K + 1) / 2;
  constexpr int kCeil = 2 * kPairs;
  const int64_t ic_stride = conv_ic_stride();
  const int64_t row_stride = conv_row_stride();
  const int64_t in_c = IC > 0 ? IC : conv_in_c();
  const int64_t out_stride = conv_out_stride();
  const int32_t out_zero = conv_out_zero();

  const __m512i idx = pair_index();
  __m512i a0[R], a1[R];
  for (int r = 0; r < R; ++r) {
    a0[r] = _mm512_setzero_si512();
    a1[r] = _mm512_setzero_si512();
  }
  const int16_t* w[R];
  if constexpr (R > 0) w[0] = conv_w_hole<0>();
  if constexpr (R > 1) w[1] = conv_w_hole<1>();
  if constexpr (R > 2) w[2] = conv_w_hole<2>();
  if constexpr (R > 3) w[3] = conv_w_hole<3>();

  const int16_t* base = img;
  for (int64_t ic = 0; ic < in_c; ++ic) {
    for (int kh = 0; kh < K; ++kh) {
      const int16_t* row = base + kh * row_stride;
      for (int p = 0; p < kPairs; ++p) {
        const __m512i pairs0 =
            _mm512_permutexvar_epi16(idx, _mm512_loadu_si512(row + 2 * p));
        const __m512i pairs1 =
            _mm512_permutexvar_epi16(idx, _mm512_loadu_si512(row + 16 + 2 * p));
        for (int r = 0; r < R; ++r) {
          int32_t wpair;
          __builtin_memcpy(&wpair, w[r] + kh * kCeil + 2 * p, sizeof(wpair));
          const __m512i wv = _mm512_set1_epi32(wpair);
          a0[r] = _mm512_dpwssd_epi32(a0[r], pairs0, wv);
          a1[r] = _mm512_dpwssd_epi32(a1[r], pairs1, wv);
        }
      }
    }
    base += ic_stride;
    for (int r = 0; r < R; ++r) w[r] += K * kCeil;
  }

  auto requant_row = [&]<int r>() {
    const int32_t bias = conv_bias_hole<r>();
    const int64_t mult = conv_mult_hole<r>();
    const int64_t nudge = conv_nudge_hole<r>();
    const int total = conv_total_hole<r>();
    const __m128i cnt = _mm_cvtsi32_si128(total);
    const __m512i mul = _mm512_set1_epi64(mult);
    const __m512i nud = _mm512_set1_epi64(nudge);
    int8_t* o = out + r * out_stride;
    for (int j = 0; j < 2; ++j) {
      const __m512i q32 =
          _mm512_add_epi32(j == 0 ? a0[r] : a1[r], _mm512_set1_epi32(bias));
      const __m256i lo32 = _mm512_castsi512_si256(q32);
      const __m256i hi32 = _mm512_extracti64x4_epi64(q32, 1);
      const __m512i plo = _mm512_sra_epi64(
          _mm512_add_epi64(_mm512_mullo_epi64(_mm512_cvtepi32_epi64(lo32), mul), nud),
          cnt);
      const __m512i phi = _mm512_sra_epi64(
          _mm512_add_epi64(_mm512_mullo_epi64(_mm512_cvtepi32_epi64(hi32), mul), nud),
          cnt);
      const __m512i scaled = _mm512_inserti64x4(
          _mm512_castsi256_si512(_mm512_cvtepi64_epi32(plo)),
          _mm512_cvtepi64_epi32(phi), 1);
      const __m512i q = _mm512_add_epi32(scaled, _mm512_set1_epi32(out_zero));
      const __m128i bytes = _mm512_cvtsepi32_epi8(q);
      if constexpr (kAct) {
        alignas(16) int8_t tmp[16];
        _mm_store_si128(reinterpret_cast<__m128i*>(tmp), bytes);
        const int8_t* lut = conv_act_hole<r>();
        for (int t = 0; t < 16; ++t)
          o[16 * j + t] = lut[static_cast<int32_t>(tmp[t]) + 128];
      } else {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 16 * j), bytes);
      }
    }
  };
  if constexpr (R > 0) requant_row.template operator()<0>();
  if constexpr (R > 1) requant_row.template operator()<1>();
  if constexpr (R > 2) requant_row.template operator()<2>();
  if constexpr (R > 3) requant_row.template operator()<3>();
}

#endif  // SESR_STENCIL_ISA_VNNI

// ============================ vbmi flavor ===================================
#if defined(SESR_STENCIL_ISA_VBMI)

// Baked-table lut_stream, mirroring tensor/simd/kernels_vbmi.cpp: the whole
// 256-entry table lives in four zmm registers, vpermi2b resolves 64 lookups
// per instruction.
extern "C" void SESR_STENCIL(lut256)(const int8_t* in, int8_t* out) {
  const int8_t* lut = SESR_HOLE_PTR(int8_t, 0);
  const int64_t n = SESR_HOLE_I64(1);
  const __m512i lo0 = _mm512_loadu_si512(lut);
  const __m512i lo1 = _mm512_loadu_si512(lut + 64);
  const __m512i hi0 = _mm512_loadu_si512(lut + 128);
  const __m512i hi1 = _mm512_loadu_si512(lut + 192);
  const __m512i flip = _mm512_set1_epi8(static_cast<char>(0x80));
  int64_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i u = _mm512_xor_si512(_mm512_loadu_si512(in + i), flip);
    const __m512i lo = _mm512_permutex2var_epi8(lo0, u, lo1);
    const __m512i hi = _mm512_permutex2var_epi8(hi0, u, hi1);
    const __mmask64 use_hi = _mm512_movepi8_mask(u);
    _mm512_storeu_si512(out + i, _mm512_mask_blend_epi8(use_hi, lo, hi));
  }
  if (i < n) {
    const __mmask64 tail = _cvtu64_mask64((~uint64_t{0}) >> (64 - (n - i)));
    const __m512i u = _mm512_xor_si512(_mm512_maskz_loadu_epi8(tail, in + i), flip);
    const __m512i lo = _mm512_permutex2var_epi8(lo0, u, lo1);
    const __m512i hi = _mm512_permutex2var_epi8(hi0, u, hi1);
    const __mmask64 use_hi = _mm512_movepi8_mask(u);
    _mm512_mask_storeu_epi8(out + i, tail, _mm512_mask_blend_epi8(use_hi, lo, hi));
  }
}

#endif  // SESR_STENCIL_ISA_VBMI

}  // namespace

// ---- conv16 instantiations -------------------------------------------------
// Shared by the scalar / avx2 / vnni flavors (each defines its own
// conv16_body). IC-generic stencils read the trip count from a hole;
// the hot (K, IC) combinations additionally get fully specialized bodies
// the compiler can unroll and schedule without a loop counter.

#if defined(SESR_STENCIL_ISA_SCALAR) || defined(SESR_STENCIL_ISA_AVX2) || \
    defined(SESR_STENCIL_ISA_VNNI)

#define SESR_CONV16(name, K, IC, R, A)                                     \
  extern "C" void SESR_STENCIL(name)(const int16_t* img, int8_t* out) {    \
    conv16_body<K, IC, R, A>(img, out);                                    \
  }

#define SESR_CONV16_K(K)                    \
  SESR_CONV16(conv16_k##K##_r1_a0, K, 0, 1, false) \
  SESR_CONV16(conv16_k##K##_r2_a0, K, 0, 2, false) \
  SESR_CONV16(conv16_k##K##_r3_a0, K, 0, 3, false) \
  SESR_CONV16(conv16_k##K##_r4_a0, K, 0, 4, false) \
  SESR_CONV16(conv16_k##K##_r1_a1, K, 0, 1, true)  \
  SESR_CONV16(conv16_k##K##_r2_a1, K, 0, 2, true)  \
  SESR_CONV16(conv16_k##K##_r3_a1, K, 0, 3, true)  \
  SESR_CONV16(conv16_k##K##_r4_a1, K, 0, 4, true)

SESR_CONV16_K(1)
SESR_CONV16_K(3)
SESR_CONV16_K(5)

// IC-specialized hot combinations (SESR/EDSR feature convs: 16-channel 3x3
// and 5x5; the 3-channel stems).
SESR_CONV16(conv16_k3ic16_r4_a0, 3, 16, 4, false)
SESR_CONV16(conv16_k3ic16_r4_a1, 3, 16, 4, true)
SESR_CONV16(conv16_k5ic16_r4_a0, 5, 16, 4, false)
SESR_CONV16(conv16_k5ic16_r4_a1, 5, 16, 4, true)
SESR_CONV16(conv16_k3ic3_r4_a0, 3, 3, 4, false)
SESR_CONV16(conv16_k3ic3_r4_a1, 3, 3, 4, true)
SESR_CONV16(conv16_k5ic3_r4_a0, 5, 3, 4, false)
SESR_CONV16(conv16_k5ic3_r4_a1, 5, 3, 4, true)

#endif

// ---- conv32 instantiations (AVX-512 flavor only) ---------------------------
// The planner prefers these whenever out_w >= 32; on flavors without them
// (scalar, avx2 — not enough registers for 2R accumulator groups)
// find_stencil misses and the conv16 family serves the op instead.

#if defined(SESR_STENCIL_ISA_VNNI)

#define SESR_CONV32(name, K, IC, R, A)                                  \
  extern "C" void SESR_STENCIL(name)(const int16_t* img, int8_t* out) { \
    conv32_body<K, IC, R, A>(img, out);                                 \
  }

#define SESR_CONV32_K(K)                           \
  SESR_CONV32(conv32_k##K##_r1_a0, K, 0, 1, false) \
  SESR_CONV32(conv32_k##K##_r2_a0, K, 0, 2, false) \
  SESR_CONV32(conv32_k##K##_r3_a0, K, 0, 3, false) \
  SESR_CONV32(conv32_k##K##_r4_a0, K, 0, 4, false) \
  SESR_CONV32(conv32_k##K##_r1_a1, K, 0, 1, true)  \
  SESR_CONV32(conv32_k##K##_r2_a1, K, 0, 2, true)  \
  SESR_CONV32(conv32_k##K##_r3_a1, K, 0, 3, true)  \
  SESR_CONV32(conv32_k##K##_r4_a1, K, 0, 4, true)

SESR_CONV32_K(1)
SESR_CONV32_K(3)
SESR_CONV32_K(5)

SESR_CONV32(conv32_k3ic16_r4_a0, 3, 16, 4, false)
SESR_CONV32(conv32_k3ic16_r4_a1, 3, 16, 4, true)
SESR_CONV32(conv32_k5ic16_r4_a0, 5, 16, 4, false)
SESR_CONV32(conv32_k5ic16_r4_a1, 5, 16, 4, true)
SESR_CONV32(conv32_k3ic3_r4_a0, 3, 3, 4, false)
SESR_CONV32(conv32_k3ic3_r4_a1, 3, 3, 4, true)
SESR_CONV32(conv32_k5ic3_r4_a0, 5, 3, 4, false)
SESR_CONV32(conv32_k5ic3_r4_a1, 5, 3, 4, true)

#endif
