// W^X executable code arena for the copy-and-patch JIT tier.
//
// One arena per compiled Program, owned by the program's JitModule exactly
// like the plan arena is owned by the plan: built once at plan-compile time,
// immutable afterwards, shared read-only by every Session executing the
// program. The lifecycle is strictly two-phase —
//
//   reserve(code, data)      mmap one RW region sized up front
//   alloc_code / alloc_data  bump-allocate, memcpy stencils, patch holes
//   finalize()               mprotect code pages RX, data pages R
//
// — so writable and executable are never simultaneously true (W^X), and
// after finalize() the mapping can never be written again: alloc_* refuse,
// and there is no way back to PROT_WRITE. Patching failures surface as
// `false`/nullptr returns, never as partial executable state — callers fall
// back to the base SIMD tier per op.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sesr::runtime::jit {

class CodeArena {
 public:
  CodeArena() = default;
  ~CodeArena();
  CodeArena(const CodeArena&) = delete;
  CodeArena& operator=(const CodeArena&) = delete;

  /// Map one RW region with room for `code_bytes` of code and `data_bytes`
  /// of baked constant data (both rounded up to whole pages; the data region
  /// starts on its own page so the two can take different final protections).
  /// False when mmap refuses or the arena is already reserved.
  [[nodiscard]] bool reserve(size_t code_bytes, size_t data_bytes);

  /// Bump-allocate from the code / data region (align must be a power of
  /// two). Null when out of space, not yet reserved, or already finalized.
  [[nodiscard]] unsigned char* alloc_code(size_t size, size_t align = 64);
  [[nodiscard]] unsigned char* alloc_data(size_t size, size_t align = 64);

  /// Flip the code region to R+X and the data region to R. After this the
  /// arena is immutable — alloc_* return null forever. False when mprotect
  /// fails (the arena is then unusable and executable code is never exposed).
  [[nodiscard]] bool finalize();

  [[nodiscard]] bool reserved() const { return base_ != nullptr; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] size_t code_bytes_used() const { return code_used_; }
  [[nodiscard]] size_t data_bytes_used() const { return data_used_; }
  [[nodiscard]] size_t bytes_mapped() const { return map_size_; }

  /// Whether `p` points into the (finalized) code region — test hook for
  /// asserting where patched entry points actually live.
  [[nodiscard]] bool contains_code(const void* p) const;

 private:
  unsigned char* base_ = nullptr;  ///< whole mapping; code region first
  size_t map_size_ = 0;
  size_t code_cap_ = 0;  ///< page-rounded code region size
  size_t data_cap_ = 0;
  size_t code_used_ = 0;
  size_t data_used_ = 0;
  bool finalized_ = false;
};

}  // namespace sesr::runtime::jit
