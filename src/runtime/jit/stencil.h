// Copy-and-patch stencil ABI: the contract between the stencil translation
// unit (stencils_tu.cpp, compiled out-of-band into relocatable objects), the
// build-time generator (tools/stencilgen.cpp, which parses those objects and
// emits the descriptor tables below as .inc files), and the runtime patcher
// (jit.cpp, which copies stencil bytes into an executable arena and writes
// concrete values into the holes).
//
// A stencil is one straight-line specialized kernel compiled with
// -fno-pic -mcmodel=large, so every reference to an `sesr_jit_hole_<n>`
// extern symbol becomes a movabs imm64 carrying an R_X86_64_64 relocation —
// an 8-byte literal the patcher overwrites with a concrete pointer, stride,
// trip count, or quant constant. References to local constant data (e.g. the
// AVX-512 pair-expansion index) become R_X86_64_64 relocations against
// .rodata section symbols; the generator embeds those sections as blobs and
// the patcher resolves the sites to the blobs' link-time addresses. Any
// other relocation (calls, jump tables, GOT) disqualifies the stencil at
// generation time — it is simply absent from the table and the runtime falls
// back to the base SIMD tier for that op.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sesr::runtime::jit {

// ---- hole assignments ------------------------------------------------------
// Shared by the stencil TU (which reads holes as opaque extern addresses) and
// the patcher (which writes the concrete values). All values travel as the
// 8-byte imm64 of a movabs; narrower integers are sign-extended on patch and
// truncated by the stencil.

// conv16 stencils: one 16-output-column block of a stride-1 int8 conv for R
// consecutive output channels, accumulation fused with fixed-point requant
// (and optionally the activation LUT tail) entirely in registers.
inline constexpr int kHoleConvW0 = 0;        ///< +r (r < 4): weight row base, oc = block base + r
inline constexpr int kHoleConvIcStride = 4;  ///< padded-image channel stride (int16 elems)
inline constexpr int kHoleConvRowStride = 5; ///< padded-image row stride (int16 elems)
inline constexpr int kHoleConvInC = 6;       ///< ic trip count (IC-generic stencils only)
inline constexpr int kHoleConvOutStride = 7; ///< output channel stride (int8 elems)
inline constexpr int kHoleConvBias0 = 8;     ///< +r: int32 bias on the accumulator grid
inline constexpr int kHoleConvMult0 = 12;    ///< +r: FixedPointMultiplier::multiplier
inline constexpr int kHoleConvNudge0 = 16;   ///< +r: 1 << (total - 1), 0 when total == 0
inline constexpr int kHoleConvTotal0 = 20;   ///< +r: 31 - shift, in [0, 62]
inline constexpr int kHoleConvOutZero = 24;  ///< output zero point
inline constexpr int kHoleConvActLut0 = 25;  ///< +r: per-channel 256-entry act table

// lut256 stencil: out[i] = lut[in[i] + 128] with the table pointer and trip
// count baked (kQScale / kQActivation with a compile-time-built table).
inline constexpr int kHoleLutTable = 0;
inline constexpr int kHoleLutCount = 1;

// add_lut stencil: out[i] = lut[(a[i] + 128) * 256 + (b[i] + 128)] with the
// 256x256 residual-add table and trip count baked.
inline constexpr int kHoleAddTable = 0;
inline constexpr int kHoleAddCount = 1;

inline constexpr int kNumHoles = 32;

// ---- patched-function signatures -------------------------------------------
// Everything per-instance is baked; only per-run buffer pointers remain.

/// conv16: `img` = padded int16 image at (ic 0, kernel row 0 of this output
/// row, first output column of the block); `out` = output at (channel block
/// base, this output row, first column of the block).
using ConvBlockFn = void (*)(const int16_t* img, int8_t* out);

/// lut256: exact aliasing allowed (out == in).
using LutStreamFn = void (*)(const int8_t* in, int8_t* out);

/// add_lut: out may alias a (the accumulating operand).
using AddLutFn = void (*)(const int8_t* a, const int8_t* b, int8_t* out);

// ---- generated descriptor tables -------------------------------------------

/// One movabs imm64 site to patch with a caller-supplied hole value.
struct StencilHole {
  uint32_t code_offset = 0;  ///< byte offset of the imm64 within the stencil
  uint16_t hole = 0;         ///< hole id (index into the patch-value array)
  int64_t addend = 0;        ///< relocation addend (value + addend is written)
};

/// One movabs imm64 site referring into an embedded constant blob.
struct StencilRodataRef {
  uint32_t code_offset = 0;
  uint16_t blob = 0;    ///< index into the set's blob table
  int64_t addend = 0;   ///< offset within the blob (sym value + addend)
};

/// One embedded read-only data section (already correctly aligned at link
/// time via alignas on the generated array).
struct StencilBlob {
  const unsigned char* data = nullptr;
  uint32_t size = 0;
};

struct StencilDesc {
  const char* name = nullptr;  ///< e.g. "conv16_k3_r4_a0" (flavor suffix stripped)
  const unsigned char* code = nullptr;
  uint32_t size = 0;
  const StencilHole* holes = nullptr;
  uint32_t hole_count = 0;
  const StencilRodataRef* rodata = nullptr;
  uint32_t rodata_count = 0;
};

/// One generated flavor ("scalar", "avx2", "vnni", "vbmi"): every stencil the
/// generator accepted from that object file, plus the constant blobs their
/// code references.
struct StencilSetDef {
  const char* name = nullptr;
  const StencilDesc* stencils = nullptr;
  size_t stencil_count = 0;
  const StencilBlob* blobs = nullptr;
  size_t blob_count = 0;
  size_t rejected_count = 0;  ///< stencils the generator had to drop
};

/// The flavors compiled into this binary, weakest-first. Empty when the
/// build carries no stencils (non-x86-64, non-ELF, or SESR_JIT_STENCILS=OFF).
[[nodiscard]] const StencilSetDef* stencil_sets(size_t* count);

/// Find `name` in the strongest flavor this CPU can execute, honouring the
/// SESR_JIT_DISABLE_STENCILS deny-list (a comma-separated test seam). Null
/// when absent — the caller falls back to the base tier. When found and
/// `set_out` is non-null, `*set_out` receives the owning flavor (whose blob
/// table the patcher resolves rodata references against).
[[nodiscard]] const StencilDesc* find_stencil(const char* name,
                                              const StencilSetDef** set_out = nullptr);

/// Structural validation run before any patching: non-empty code, hole ids in
/// range, every patch site 8 bytes in-bounds, rodata refs within the blob
/// table. A corrupted descriptor is reported (false) rather than patched.
[[nodiscard]] bool validate_stencil(const StencilDesc& s, const StencilSetDef& set);

}  // namespace sesr::runtime::jit
