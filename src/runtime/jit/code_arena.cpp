#include "runtime/jit/code_arena.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define SESR_JIT_HAVE_MMAP 1
#endif

namespace sesr::runtime::jit {

namespace {

size_t page_size() {
#ifdef SESR_JIT_HAVE_MMAP
  static const size_t ps = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return ps;
#else
  return 4096;
#endif
}

size_t round_up(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

}  // namespace

CodeArena::~CodeArena() {
#ifdef SESR_JIT_HAVE_MMAP
  if (base_ != nullptr) munmap(base_, map_size_);
#endif
}

bool CodeArena::reserve(size_t code_bytes, size_t data_bytes) {
#ifdef SESR_JIT_HAVE_MMAP
  if (base_ != nullptr || code_bytes == 0) return false;
  const size_t ps = page_size();
  code_cap_ = round_up(code_bytes, ps);
  data_cap_ = round_up(data_bytes, ps);
  map_size_ = code_cap_ + data_cap_;
  void* mem = mmap(nullptr, map_size_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    base_ = nullptr;
    map_size_ = code_cap_ = data_cap_ = 0;
    return false;
  }
  base_ = static_cast<unsigned char*>(mem);
  return true;
#else
  (void)code_bytes;
  (void)data_bytes;
  return false;
#endif
}

unsigned char* CodeArena::alloc_code(size_t size, size_t align) {
  if (base_ == nullptr || finalized_ || size == 0) return nullptr;
  const size_t at = round_up(code_used_, align);
  if (at + size > code_cap_) return nullptr;
  code_used_ = at + size;
  return base_ + at;
}

unsigned char* CodeArena::alloc_data(size_t size, size_t align) {
  if (base_ == nullptr || finalized_ || size == 0) return nullptr;
  const size_t at = round_up(data_used_, align);
  if (at + size > data_cap_) return nullptr;
  data_used_ = at + size;
  return base_ + code_cap_ + at;
}

bool CodeArena::finalize() {
#ifdef SESR_JIT_HAVE_MMAP
  if (base_ == nullptr || finalized_) return false;
  if (mprotect(base_, code_cap_, PROT_READ | PROT_EXEC) != 0) return false;
  if (data_cap_ != 0 && mprotect(base_ + code_cap_, data_cap_, PROT_READ) != 0)
    return false;
  finalized_ = true;
  return true;
#else
  return false;
#endif
}

bool CodeArena::contains_code(const void* p) const {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  return base_ != nullptr && b >= base_ && b < base_ + code_cap_;
}

}  // namespace sesr::runtime::jit
