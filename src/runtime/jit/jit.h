// The copy-and-patch JIT tier over the Program IR.
//
// At plan-compile time — when every shape, stride, channel count, and quant
// grid of a program is a constant — compile_jit() walks the op list and, for
// each hot int8 op it has a stencil for, copies a pre-compiled
// position-independent kernel into the program's executable code arena and
// patches the constants straight into the instruction stream:
//
//   kQConv        conv16 stencils — one straight-line kernel per 4-channel
//                 output block with strides, trip counts, weight pointers,
//                 per-channel fixed-point requant constants, and the fused
//                 activation table baked in. Interior output rows run the
//                 patched code; vertically-clipped edge rows run the base
//                 SIMD tier (bit-exact either way).
//   kQScale /     lut256 stencils — the 256-entry rescale / activation table
//   kQActivation  is built once at compile time, copied into the arena's
//                 read-only data region, and its address + trip count baked.
//   kQAdd         add_lut stencil — the program's 256x256 residual-add table
//                 pointer and trip count baked.
//
// The resulting JitModule is owned by the Program exactly like the arena
// plan: compiled once, immutable afterwards (W^X — the code pages are never
// writable again), shared by every Session executing the program. Any op the
// compiler cannot JIT — no stencil for its shape, deny-listed, arena budget
// exhausted, patching failed — keeps running the base SIMD tier: the
// interpreter path is the always-correct reference and the fallback ladder
// (jit -> base SIMD tier -> scalar) is per-op, never per-program.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/jit/code_arena.h"
#include "runtime/jit/stencil.h"

namespace sesr {
struct Int8ConvSpec;
class Workspace;
namespace simd {
struct KernelDispatch;
}
}  // namespace sesr

namespace sesr::runtime {
class Program;
}

namespace sesr::runtime::jit {

/// Whether the JIT tier can work in this process: stencils compiled into the
/// binary AND a W^X code arena actually executes (probed once by patching and
/// running a trivial stencil — mmap restrictions, noexec mounts, or a
/// rejected stencil table all report false). SESR_KERNEL_VARIANT=jit on a
/// machine where this is false silently runs the base tier.
[[nodiscard]] bool available();

/// One kQConv's compiled artifact: the interior-row kernel per 4-channel
/// output block, plus the geometry the driver needs to route interior vs
/// edge rows.
struct JitConvOp {
  std::vector<ConvBlockFn> blocks;  ///< ceil(out_c / 4) patched entry points
  /// Output columns each block covers per call: 32 when the wide AVX-512
  /// family served the op (out_w >= 32 and every block found a conv32
  /// stencil), else 16. The driver steps `ob` by this and tail-shifts.
  int cols = 16;
  const char* stencil = nullptr;  ///< stencil name (diagnostics / dump)
};

/// One compiled op. kind mirrors the op kind it accelerates.
struct JitOp {
  enum class Kind : uint8_t { kConv, kLut, kAdd };
  Kind kind = Kind::kConv;
  JitConvOp conv;                 ///< kConv
  LutStreamFn lut = nullptr;      ///< kLut (kQScale / kQActivation)
  AddLutFn add = nullptr;         ///< kAdd (kQAdd with a built add table)
  const char* stencil = nullptr;  ///< stencil name (kLut / kAdd)
};

/// The program-owned compiled artifact: patched entry points + the arena
/// that holds their code and baked tables. Immutable after compile;
/// destroying the module unmaps the code (the program keeps it alive for
/// every session's lifetime by construction).
class JitModule {
 public:
  [[nodiscard]] const JitOp& op(int idx) const { return ops_[static_cast<size_t>(idx)]; }
  [[nodiscard]] int num_ops() const { return static_cast<int>(ops_.size()); }
  [[nodiscard]] size_t code_bytes() const { return arena_.code_bytes_used(); }
  [[nodiscard]] size_t data_bytes() const { return arena_.data_bytes_used(); }
  [[nodiscard]] double compile_ms() const { return compile_ms_; }
  /// Test hook: whether `p` is a patched entry point inside this module's
  /// executable region.
  [[nodiscard]] bool owns_code(const void* p) const { return arena_.contains_code(p); }

 private:
  friend std::shared_ptr<const JitModule> detail_compile(Program& program);
  JitModule() = default;

  std::vector<JitOp> ops_;
  CodeArena arena_;
  double compile_ms_ = 0.0;
};

/// The pass pipeline's JIT stage, run after variant selection: no-op unless
/// the program was stamped KernelVariant::kJit. Compiles every eligible op
/// into a JitModule the program owns, stamps Op::jit with the module index,
/// and re-stamps ops it could NOT compile with the base SIMD tier so
/// Program::dump() reports the tier each op actually runs.
void compile_jit(Program& program);

/// Patch one stencil into `arena`: validate, copy the code bytes, write
/// every hole's value (+addend) and every rodata site's blob address into
/// the imm64 slots. Returns the entry point, or null when validation fails
/// or the arena is out of space — callers fall back. (Public for the unit
/// tests' corrupted-stencil and W^X coverage; compile_jit is the real
/// consumer.)
[[nodiscard]] unsigned char* patch_stencil(CodeArena& arena, const StencilDesc& stencil,
                                           const StencilSetDef& set,
                                           const int64_t hole_values[kNumHoles]);

/// Plan and patch the interior-row kernels for one conv described by `spec`
/// (weights_kw/bias/requant/act_lut already packed, exactly as the int8 plan
/// lowering emits them) into `arena`: one stencil per 4-channel output block,
/// every hole baked from the spec and the h x w -> out_h x out_w geometry.
/// Returns false — leaving `out` empty — when any block has no stencil or
/// patching fails; the caller still owns finalize(). This is detail_compile's
/// kQConv case, exposed so the microkernel bench can time the patched conv
/// (and its patch cost) against the dispatch tiers on identical buffers.
[[nodiscard]] bool patch_conv(CodeArena& arena, const Int8ConvSpec& spec, int64_t h,
                              int64_t w, int64_t out_h, int64_t out_w, JitConvOp& out);

/// The JIT conv driver Session::execute routes kQConv ops with Op::jit >= 0
/// through: widens the input exactly like int8_conv2d_nchw, runs interior
/// output rows through the op's patched blocks, and vertically-clipped edge
/// rows through `kd`'s base kernels (bit-exact by the shared accumulation
/// order). `spec` is the same spec the non-JIT path would use.
void run_conv(const JitOp& jop, const Int8ConvSpec& spec, const int8_t* in, int64_t n,
              int64_t h, int64_t w, int64_t out_h, int64_t out_w, int8_t* out,
              Workspace& workspace, const simd::KernelDispatch& kd);

}  // namespace sesr::runtime::jit
