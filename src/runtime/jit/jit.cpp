#include "runtime/jit/jit.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>

#include "core/config.h"
#include "runtime/passes/passes.h"
#include "runtime/program.h"
#include "tensor/int8_kernels.h"
#include "tensor/parallel.h"
#include "tensor/simd/dispatch.h"
#include "tensor/workspace.h"

namespace sesr::runtime::jit {

namespace {

size_t round64(size_t v) { return (v + 63) & ~size_t{63}; }

/// The stencil a conv op's oc block wants from the `cols`-wide family (16 or
/// 32 output columns per call): the IC-unrolled specialization for the zoo's
/// hot (k, in_c) combinations on full 4-row blocks, the IC-generic grid
/// otherwise.
std::string conv_stencil_name(int cols, int64_t k, int64_t in_c, int rows, bool act) {
  const char a = act ? '1' : '0';
  const std::string fam = "conv" + std::to_string(cols) + "_k" + std::to_string(k);
  if (rows == 4 && (k == 3 || k == 5) && (in_c == 3 || in_c == 16))
    return fam + "ic" + std::to_string(in_c) + "_r4_a" + a;
  return fam + "_r" + std::to_string(rows) + "_a" + a;
}

/// Resolve every oc block's stencil from one family; false (and cleared
/// outputs) when any block misses — families are all-or-nothing per op so
/// the driver steps a single column width.
bool find_conv_family(int cols, int64_t k, int64_t in_c, int64_t out_c, bool act,
                      std::vector<const StencilDesc*>& stencils,
                      std::vector<const StencilSetDef*>& sets) {
  stencils.clear();
  sets.clear();
  for (int64_t oc = 0; oc < out_c; oc += 4) {
    const int rows = static_cast<int>(std::min<int64_t>(4, out_c - oc));
    const std::string name = conv_stencil_name(cols, k, in_c, rows, act);
    const StencilSetDef* set = nullptr;
    const StencilDesc* desc = find_stencil(name.c_str(), &set);
    if (desc == nullptr) {
      stencils.clear();
      sets.clear();
      return false;
    }
    stencils.push_back(desc);
    sets.push_back(set);
  }
  return true;
}

/// The widest family the op's geometry and the built stencil set can serve:
/// 32 when every block resolves in the wide family, else 16, else 0.
int pick_conv_family(int64_t k, int64_t in_c, int64_t out_c, int64_t out_w, bool act,
                     std::vector<const StencilDesc*>& stencils,
                     std::vector<const StencilSetDef*>& sets) {
  if (out_w >= 32 && find_conv_family(32, k, in_c, out_c, act, stencils, sets))
    return 32;
  if (find_conv_family(16, k, in_c, out_c, act, stencils, sets)) return 16;
  return 0;
}

/// One op's compile plan, gathered before the arena is sized so the whole
/// module is allocated in a single reservation.
struct OpPlan {
  size_t op_index = 0;
  JitOp::Kind kind = JitOp::Kind::kConv;
  // conv: one (stencil, set) per oc block; lut/add: exactly one.
  std::vector<const StencilDesc*> stencils;
  std::vector<const StencilSetDef*> sets;
  size_t code_bytes = 0;
  size_t data_bytes = 0;  ///< arena-baked tables (lut256)
};

bool plan_conv(const Program& program, const Op& op, OpPlan& plan) {
  const QStepData& q = program.qdata()[static_cast<size_t>(op.qdata)];
  const Shape& out_shape = program.buffers()[static_cast<size_t>(op.output)].shape;
  const int64_t k = q.kernel;
  if (q.weights_kw.empty() || q.stride != 1 || out_shape[3] < 16) return false;
  if (k != 1 && k != 3 && k != 5) return false;
  const bool act = !q.act_lut.empty();
  if (pick_conv_family(k, q.in_c, q.out_c, out_shape[3], act, plan.stencils,
                       plan.sets) == 0)
    return false;  // missing / denied / corrupt
  for (const StencilDesc* desc : plan.stencils) plan.code_bytes += round64(desc->size);
  plan.kind = JitOp::Kind::kConv;
  return true;
}

bool plan_lut(OpPlan& plan, JitOp::Kind kind, const char* stencil_name,
              size_t data_bytes) {
  const StencilSetDef* set = nullptr;
  const StencilDesc* desc = find_stencil(stencil_name, &set);
  if (desc == nullptr) return false;
  plan.stencils.push_back(desc);
  plan.sets.push_back(set);
  plan.code_bytes = round64(desc->size);
  plan.data_bytes = data_bytes;
  plan.kind = kind;
  return true;
}

}  // namespace

unsigned char* patch_stencil(CodeArena& arena, const StencilDesc& stencil,
                             const StencilSetDef& set,
                             const int64_t hole_values[kNumHoles]) {
  if (!validate_stencil(stencil, set)) return nullptr;
  unsigned char* code = arena.alloc_code(stencil.size);
  if (code == nullptr) return nullptr;
  std::memcpy(code, stencil.code, stencil.size);
  for (uint32_t i = 0; i < stencil.hole_count; ++i) {
    const StencilHole& h = stencil.holes[i];
    const int64_t value = hole_values[h.hole] + h.addend;
    std::memcpy(code + h.code_offset, &value, sizeof(value));
  }
  for (uint32_t i = 0; i < stencil.rodata_count; ++i) {
    const StencilRodataRef& r = stencil.rodata[i];
    const uint64_t value = reinterpret_cast<uint64_t>(set.blobs[r.blob].data) +
                           static_cast<uint64_t>(r.addend);
    std::memcpy(code + r.code_offset, &value, sizeof(value));
  }
  return code;
}

bool patch_conv(CodeArena& arena, const Int8ConvSpec& spec, int64_t h, int64_t w,
                int64_t out_h, int64_t out_w, JitConvOp& out) {
  out.blocks.clear();
  const int64_t k = spec.kernel;
  if (spec.weights_kw == nullptr || spec.requant == nullptr || spec.stride != 1 ||
      out_w < 16)
    return false;
  if (k != 1 && k != 3 && k != 5) return false;
  const int64_t kceil = 2 * int8_kw_pairs(k);
  const int64_t w_stride = spec.in_c * k * kceil;
  const int64_t prow_w = w + 2 * spec.pad + kInt8ConvPatchSlack;
  const int64_t lut_stride = spec.act_lut_channels > 1 ? 256 : 0;
  const bool act = spec.act_lut != nullptr;
  std::vector<const StencilDesc*> stencils;
  std::vector<const StencilSetDef*> sets;
  out.cols = pick_conv_family(k, spec.in_c, spec.out_c, out_w, act, stencils, sets);
  if (out.cols == 0) {
    out.cols = 16;
    return false;
  }
  for (int64_t oc0 = 0; oc0 < spec.out_c; oc0 += 4) {
    const size_t b = static_cast<size_t>(oc0 / 4);
    const int rows = static_cast<int>(std::min<int64_t>(4, spec.out_c - oc0));
    const StencilDesc* desc = stencils[b];
    const StencilSetDef* set = sets[b];
    int64_t holes[kNumHoles] = {};
    for (int r = 0; r < rows; ++r) {
      const int64_t c = oc0 + r;
      holes[kHoleConvW0 + r] = reinterpret_cast<int64_t>(spec.weights_kw + c * w_stride);
      holes[kHoleConvBias0 + r] = spec.bias == nullptr ? 0 : spec.bias[c];
      const FixedPointMultiplier& fp = spec.requant[c];
      // The uniform requant formula (see stencils_tu.cpp) encodes the
      // degenerate cases by patched constants: m == 0 -> mult 0 and total 0
      // (product and nudge both 0); total == 0 -> nudge 0 and a 0-bit shift
      // (exact truncation) — bit-identical to FixedPointMultiplier::apply in
      // every case.
      const int total = fp.multiplier == 0 ? 0 : 31 - fp.shift;
      holes[kHoleConvMult0 + r] = fp.multiplier;
      holes[kHoleConvTotal0 + r] = total;
      holes[kHoleConvNudge0 + r] = total > 0 ? int64_t{1} << (total - 1) : 0;
      if (act)
        holes[kHoleConvActLut0 + r] =
            reinterpret_cast<int64_t>(spec.act_lut + c * lut_stride);
    }
    holes[kHoleConvIcStride] = h * prow_w;
    holes[kHoleConvRowStride] = prow_w;
    holes[kHoleConvInC] = spec.in_c;
    holes[kHoleConvOutStride] = out_h * out_w;
    holes[kHoleConvOutZero] = spec.out_zero;
    unsigned char* code = patch_stencil(arena, *desc, *set, holes);
    if (code == nullptr) {
      out.blocks.clear();
      return false;
    }
    out.blocks.push_back(reinterpret_cast<ConvBlockFn>(code));
    out.stencil = desc->name;
  }
  return !out.blocks.empty();
}

bool available() {
  // One probe per process: patch the scalar lut256 stencil with an identity
  // table and execute it. Proves the whole chain — stencils compiled in,
  // RW->RX mprotect permitted, patched code actually runs. Deliberately
  // ignores the deny-list (a denied stencil is a routing decision, not an
  // unavailable JIT).
  static const bool ok = [] {
    size_t n = 0;
    const StencilSetDef* sets = stencil_sets(&n);
    if (sets == nullptr || n == 0) return false;
    const StencilSetDef* set = nullptr;
    const StencilDesc* desc = nullptr;
    for (size_t s = 0; s < n && desc == nullptr; ++s) {
      if (std::string_view(sets[s].name) != "scalar") continue;
      for (size_t i = 0; i < sets[s].stencil_count; ++i)
        if (std::strcmp(sets[s].stencils[i].name, "lut256") == 0) {
          set = &sets[s];
          desc = &sets[s].stencils[i];
          break;
        }
    }
    if (desc == nullptr) return false;
    CodeArena arena;
    if (!arena.reserve(desc->size, 256)) return false;
    unsigned char* table = arena.alloc_data(256);
    if (table == nullptr) return false;
    for (int i = 0; i < 256; ++i) table[i] = static_cast<unsigned char>(i - 128);
    int64_t holes[kNumHoles] = {};
    holes[kHoleLutTable] = reinterpret_cast<int64_t>(table);
    holes[kHoleLutCount] = 16;
    unsigned char* code = patch_stencil(arena, *desc, *set, holes);
    if (code == nullptr || !arena.finalize()) return false;
    int8_t in[16], out[16];
    for (int i = 0; i < 16; ++i) {
      in[i] = static_cast<int8_t>(i * 17 - 101);
      out[i] = 0;
    }
    reinterpret_cast<LutStreamFn>(code)(in, out);
    return std::memcmp(in, out, sizeof(in)) == 0;  // identity table round-trip
  }();
  return ok;
}

std::shared_ptr<const JitModule> detail_compile(Program& program);

void compile_jit(Program& program) { detail_compile(program); }

std::shared_ptr<const JitModule> detail_compile(Program& program) {
  ProgramEditor editor(program);
  if (editor.kernel_variant() != simd::KernelVariant::kJit) return nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  const simd::KernelVariant base = simd::clamp_to_supported(simd::KernelVariant::kJit);

  // Demote every dispatched op to the base tier up front; ops that compile
  // below are promoted back to kJit. Ops the dispatch table never serves
  // stay kScalar — exactly as under any other tier.
  for (Op& op : editor.ops()) {
    op.jit = -1;
    if (op.dispatched) op.variant = base;
  }

  auto finish = [&](std::shared_ptr<JitModule> module) {
    editor.jit_compile_ms() =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    editor.jit_ops() = module ? module->num_ops() : 0;
    editor.jit_code_bytes() =
        module ? static_cast<int64_t>(module->code_bytes()) : 0;
    if (module) module->compile_ms_ = editor.jit_compile_ms();
    editor.jit_module() = std::move(module);
    return editor.jit_module();
  };

  if (!available()) return finish(nullptr);

  // Pass 1: plan — which ops have stencils, and how much arena they need.
  // The SESR_JIT_ARENA_BYTES budget is enforced here, in op order: an op
  // that does not fit falls back, later smaller ops may still compile.
  const size_t budget = static_cast<size_t>(core::config_int64("SESR_JIT_ARENA_BYTES"));
  std::vector<OpPlan> plans;
  size_t code_total = 0, data_total = 0;
  const auto& ops = editor.ops();
  for (size_t k = 0; k < ops.size(); ++k) {
    const Op& op = ops[k];
    if (op.qdata < 0) continue;
    const QStepData& q = program.qdata()[static_cast<size_t>(op.qdata)];
    OpPlan plan;
    plan.op_index = k;
    bool planned = false;
    switch (op.kind) {
      case Op::Kind::kQConv:
        planned = plan_conv(program, op, plan);
        break;
      case Op::Kind::kQScale:
        planned = plan_lut(plan, JitOp::Kind::kLut, "lut256", 256);
        break;
      case Op::Kind::kQActivation:
        // Per-channel negative slopes need out_c tables with a per-plane
        // driver — not a single patched stream; those stay on the base tier.
        if (q.neg_per_channel.empty())
          planned = plan_lut(plan, JitOp::Kind::kLut, "lut256", 256);
        break;
      case Op::Kind::kQAdd:
        if (!q.add_lut.empty())
          planned = plan_lut(plan, JitOp::Kind::kAdd, "add_lut", 0);
        break;
      default:
        break;
    }
    if (!planned) continue;
    if (code_total + plan.code_bytes + data_total + plan.data_bytes > budget) continue;
    code_total += plan.code_bytes;
    data_total += plan.data_bytes;
    plans.push_back(std::move(plan));
  }
  if (plans.empty()) return finish(nullptr);

  // Pass 2: reserve once, patch everything, then seal the arena W^X.
  auto module = std::shared_ptr<JitModule>(new JitModule());
  if (!module->arena_.reserve(code_total, data_total)) return finish(nullptr);

  for (OpPlan& plan : plans) {
    Op& op = editor.ops()[plan.op_index];
    const QStepData& q = program.qdata()[static_cast<size_t>(op.qdata)];
    const Shape& out_shape = program.buffers()[static_cast<size_t>(op.output)].shape;
    const int64_t numel = out_shape.numel();
    JitOp jop;
    jop.kind = plan.kind;
    bool ok = true;

    switch (plan.kind) {
      case JitOp::Kind::kConv: {
        const Shape& in_shape = program.buffers()[static_cast<size_t>(op.input)].shape;
        Int8ConvSpec spec;
        spec.in_c = q.in_c;
        spec.out_c = q.out_c;
        spec.kernel = q.kernel;
        spec.stride = q.stride;
        spec.pad = q.pad;
        spec.out_zero = q.out.zero_point;
        spec.weights_kw = q.weights_kw.data();
        spec.bias = q.bias.empty() ? nullptr : q.bias.data();
        spec.requant = q.requant.data();
        spec.act_lut = q.act_lut.empty() ? nullptr : q.act_lut.data();
        spec.act_lut_channels = q.act_lut_channels;
        ok = patch_conv(module->arena_, spec, in_shape[2], in_shape[3], out_shape[2],
                        out_shape[3], jop.conv);
        break;
      }
      case JitOp::Kind::kLut: {
        unsigned char* table = module->arena_.alloc_data(256);
        if (table == nullptr) {
          ok = false;
          break;
        }
        int8_t* lut = reinterpret_cast<int8_t*>(table);
        if (op.kind == Op::Kind::kQScale) {
          int8_rescale_build_lut(q.in_a.zero_point, q.m_a, q.out.zero_point, lut);
        } else {
          Int8ActivationSpec spec;
          spec.in_zero = q.in_a.zero_point;
          spec.out_zero = q.out.zero_point;
          spec.pos = q.pos;
          spec.neg = q.neg;
          spec.out_cap = q.out_cap;
          int8_activation_build_lut(spec, q.neg, lut);
        }
        int64_t holes[kNumHoles] = {};
        holes[kHoleLutTable] = reinterpret_cast<int64_t>(table);
        holes[kHoleLutCount] = numel;
        unsigned char* code =
            patch_stencil(module->arena_, *plan.stencils[0], *plan.sets[0], holes);
        ok = code != nullptr;
        if (ok) {
          jop.lut = reinterpret_cast<LutStreamFn>(code);
          jop.stencil = plan.stencils[0]->name;
        }
        break;
      }
      case JitOp::Kind::kAdd: {
        // The 256x256 table already lives in the program's QStepData
        // (immutable for the program's lifetime) — bake its address.
        int64_t holes[kNumHoles] = {};
        holes[kHoleAddTable] = reinterpret_cast<int64_t>(q.add_lut.data());
        holes[kHoleAddCount] = numel;
        unsigned char* code =
            patch_stencil(module->arena_, *plan.stencils[0], *plan.sets[0], holes);
        ok = code != nullptr;
        if (ok) {
          jop.add = reinterpret_cast<AddLutFn>(code);
          jop.stencil = plan.stencils[0]->name;
        }
        break;
      }
    }

    if (!ok) continue;  // op stays on the base tier; arena space is skipped
    op.jit = module->num_ops();
    op.variant = simd::KernelVariant::kJit;
    module->ops_.push_back(std::move(jop));
  }

  // Seal W^X. If the flip fails nothing executable exists — drop the module
  // and run the whole program on the base tier.
  if (module->ops_.empty() || !module->arena_.finalize()) {
    for (Op& op : editor.ops()) {
      op.jit = -1;
      if (op.dispatched) op.variant = base;
    }
    return finish(nullptr);
  }
  return finish(std::move(module));
}

void run_conv(const JitOp& jop, const Int8ConvSpec& spec, const int8_t* in, int64_t n,
              int64_t h, int64_t w, int64_t out_h, int64_t out_w, int8_t* out,
              Workspace& workspace, const simd::KernelDispatch& kd) {
  // Identical padded-image layout to int8_conv2d_nchw — the stencils were
  // patched against these exact strides.
  const int64_t prow_w = w + 2 * spec.pad + kInt8ConvPatchSlack;
  std::span<int16_t> padded = workspace.scratch<int16_t>(n * spec.in_c * h * prow_w);
  for (int64_t i = 0; i < n; ++i)
    int8_widen_padded_image(in + i * spec.in_c * h * w, spec.in_c, h, w, spec.pad,
                            spec.in_zero, prow_w,
                            padded.data() + i * spec.in_c * h * prow_w);

  const int64_t out_hw = out_h * out_w;
  const int64_t k = spec.kernel, pad = spec.pad;
  const int64_t kw_pairs = int8_kw_pairs(k);
  const int64_t kceil = 2 * kw_pairs;
  const int64_t w_stride = spec.in_c * k * kceil;
  const int64_t ic_stride = h * prow_w;
  const int64_t lut_stride = spec.act_lut_channels > 1 ? 256 : 0;
  const ConvBlockFn* const blocks = jop.conv.blocks.data();
  const int64_t num_blocks = static_cast<int64_t>(jop.conv.blocks.size());
  const int64_t cols = jop.conv.cols;

  parallel_for(0, n * out_h, [&](int64_t lo, int64_t hi) {
    alignas(64) int32_t acc[4 * 16];
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t i = idx / out_h, oh = idx % out_h;
      const int64_t kh_lo = std::max<int64_t>(0, pad - oh);
      const int64_t kh_hi = std::min<int64_t>(k, h + pad - oh);
      const int16_t* img_row0 =
          padded.data() + i * spec.in_c * ic_stride + (oh - pad + kh_lo) * prow_w;
      int8_t* out_row = out + i * spec.out_c * out_hw + oh * out_w;
      if (kh_lo == 0 && kh_hi == k) {
        // Interior row: every kernel row in bounds — the patched stencils'
        // fixed-K loop nest applies as-is. `cols` is the patched family's
        // block width; the tail shift recomputes overlapped columns, which
        // is bit-exact (each output column is a pure function of the image).
        for (int64_t ob0 = 0; ob0 < out_w; ob0 += cols) {
          const int64_t ob = std::min(ob0, out_w - cols);
          const int16_t* img = img_row0 + ob;
          for (int64_t b = 0; b < num_blocks; ++b)
            blocks[b](img, out_row + b * 4 * out_hw + ob);
        }
      } else {
        // Vertically clipped edge row: the base tier's clipping-aware block
        // kernel + requant — exactly int8_conv2d_nchw's direct path, so the
        // row is bit-identical to the non-JIT result.
        const int64_t kh_count = kh_hi - kh_lo;
        for (int64_t ob0 = 0; ob0 < out_w; ob0 += 16) {
          const int64_t ob = std::min(ob0, out_w - 16);
          const int16_t* img = img_row0 + ob;
          for (int64_t oc = 0; oc < spec.out_c; oc += 4) {
            const int rows = static_cast<int>(std::min<int64_t>(4, spec.out_c - oc));
            kd.int8_conv_cols16(spec.weights_kw + oc * w_stride + kh_lo * kceil,
                                w_stride, rows, img, ic_stride, prow_w, spec.in_c, k,
                                kh_count, kw_pairs, acc);
            for (int r = 0; r < rows; ++r) {
              const int64_t c = oc + r;
              kd.int8_requant_row(
                  acc + r * 16, 16, spec.bias != nullptr ? spec.bias[c] : 0,
                  spec.requant[c].multiplier, spec.requant[c].shift, spec.out_zero,
                  spec.act_lut == nullptr ? nullptr : spec.act_lut + c * lut_stride,
                  out_row + c * out_hw + ob);
            }
          }
        }
      }
    }
  });
}

}  // namespace sesr::runtime::jit
