// The compiled-in stencil tables and their lookup policy.
//
// When the build generates stencils (SESR_JIT_STENCILS — x86-64 ELF with a
// GNU-compatible compiler), this TU includes the stencilgen-emitted .inc
// fragment for each ISA flavor and exposes them weakest-first. Lookup walks
// strongest-first among the flavors this CPU can execute, so one stencil name
// resolves to the best available implementation — mirroring how the base
// dispatch tables overlay tiers, but at per-stencil granularity (the vbmi
// flavor only carries the LUT stream, the avx2/vnni flavors only the convs).
#include "runtime/jit/stencil.h"

#include <cstring>
#include <string>
#include <string_view>

#include "core/config.h"
#include "tensor/simd/dispatch.h"

namespace sesr::runtime::jit {
namespace {

#ifdef SESR_JIT_STENCILS
#include "stencils_scalar.inc"  // NOLINT(bugprone-suspicious-include)
#include "stencils_avx2.inc"    // NOLINT(bugprone-suspicious-include)
#include "stencils_vnni.inc"    // NOLINT(bugprone-suspicious-include)
#include "stencils_vbmi.inc"    // NOLINT(bugprone-suspicious-include)

const StencilSetDef kSets[] = {k_scalar_set, k_avx2_set, k_vnni_set, k_vbmi_set};
constexpr size_t kNumSets = sizeof(kSets) / sizeof(kSets[0]);
#else
const StencilSetDef* kSets = nullptr;
constexpr size_t kNumSets = 0;
#endif

/// Whether this CPU can execute flavor `set` (build-time presence is already
/// settled by kSets membership).
bool cpu_can_run(const StencilSetDef& set) {
  const simd::CpuFeatures& cpu = simd::cpu_features();
  const std::string_view name = set.name;
  if (name == "scalar") return true;
  if (name == "avx2") return cpu.avx2;
  if (name == "vnni") return cpu.avx512_core && cpu.avx512_vnni;
  if (name == "vbmi") return cpu.avx512_core && cpu.avx512_vbmi;
  return false;
}

/// SESR_JIT_DISABLE_STENCILS match: bare name, "flavor:name", or "all".
bool denied(std::string_view deny_list, std::string_view flavor,
            std::string_view name) {
  size_t pos = 0;
  while (pos <= deny_list.size()) {
    const size_t comma = deny_list.find(',', pos);
    std::string_view item = deny_list.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) {
      if (item == "all" || item == name) return true;
      const size_t colon = item.find(':');
      if (colon != std::string_view::npos && item.substr(0, colon) == flavor &&
          item.substr(colon + 1) == name)
        return true;
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const StencilSetDef* stencil_sets(size_t* count) {
  *count = kNumSets;
  return kNumSets ? kSets : nullptr;
}

const StencilDesc* find_stencil(const char* name, const StencilSetDef** set_out) {
  const std::string deny = core::config_string("SESR_JIT_DISABLE_STENCILS");
  for (size_t s = kNumSets; s-- > 0;) {
    const StencilSetDef& set = kSets[s];
    if (!cpu_can_run(set)) continue;
    if (denied(deny, set.name, name)) continue;
    for (size_t i = 0; i < set.stencil_count; ++i) {
      const StencilDesc& d = set.stencils[i];
      if (std::strcmp(d.name, name) == 0) {
        if (!validate_stencil(d, set)) return nullptr;  // corrupt — fall back
        if (set_out != nullptr) *set_out = &set;
        return &d;
      }
    }
  }
  return nullptr;
}

bool validate_stencil(const StencilDesc& s, const StencilSetDef& set) {
  if (s.name == nullptr || s.code == nullptr || s.size == 0) return false;
  if (s.hole_count > 0 && s.holes == nullptr) return false;
  if (s.rodata_count > 0 && s.rodata == nullptr) return false;
  for (uint32_t i = 0; i < s.hole_count; ++i) {
    const StencilHole& h = s.holes[i];
    if (h.hole >= kNumHoles) return false;
    if (h.code_offset + 8 > s.size || h.code_offset + 8 < h.code_offset) return false;
  }
  for (uint32_t i = 0; i < s.rodata_count; ++i) {
    const StencilRodataRef& r = s.rodata[i];
    if (r.code_offset + 8 > s.size || r.code_offset + 8 < r.code_offset) return false;
    if (r.blob >= set.blob_count) return false;
    const StencilBlob& b = set.blobs[r.blob];
    if (b.data == nullptr) return false;
    if (r.addend < 0 || static_cast<uint64_t>(r.addend) >= b.size) return false;
  }
  return true;
}

}  // namespace sesr::runtime::jit
