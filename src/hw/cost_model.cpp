#include "hw/cost_model.h"

#include <cmath>
#include <cstdio>
#include <string>

namespace sesr::hw {

NetworkCost summarize(const nn::Module& model, const Shape& input) {
  NetworkCost cost;
  cost.layers = model.layers(input);
  for (const nn::LayerInfo& info : cost.layers) {
    cost.params += info.params;
    cost.macs += info.macs;
  }
  return cost;
}

std::string human_count(double value) {
  char buf[32];
  if (value >= 1e12)
    std::snprintf(buf, sizeof(buf), "%.3gT", value / 1e12);
  else if (value >= 1e9)
    std::snprintf(buf, sizeof(buf), "%.3gB", value / 1e9);
  else if (value >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.3gM", value / 1e6);
  else if (value >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.4gK", value / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace sesr::hw
