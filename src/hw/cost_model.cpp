#include "hw/cost_model.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "tensor/int8_kernels.h"

namespace sesr::hw {

NetworkCost summarize(const nn::Module& model, const Shape& input) {
  NetworkCost cost;
  cost.layers = model.layers(input);
  for (const nn::LayerInfo& info : cost.layers) {
    cost.params += info.params;
    cost.macs += info.macs;
  }
  return cost;
}

namespace {

nn::LayerInfo step_info(nn::LayerKind kind, std::string name, const Shape& in,
                        const Shape& out) {
  nn::LayerInfo info;
  info.kind = kind;
  info.name = std::move(name);
  info.input = in;
  info.output = out;
  return info;
}

}  // namespace

std::vector<nn::LayerInfo> int8_plan_layers(const runtime::Program& plan) {
  using Kind = runtime::Op::Kind;
  if (plan.precision() != runtime::Precision::kInt8)
    throw std::invalid_argument("int8_plan_layers: int8 plans only");
  if (plan.input_shape().ndim() >= 1 && plan.input_shape()[0] != 1)
    throw std::invalid_argument("int8_plan_layers: compile the plan at batch size 1");

  const auto& buffers = plan.buffers();
  const auto shape_of = [&](int id) -> const Shape& {
    return buffers[static_cast<size_t>(id)].shape;
  };

  std::vector<nn::LayerInfo> infos;
  for (const runtime::Op& step : plan.ops()) {
    const runtime::QStepData* q =
        step.qdata >= 0 ? &plan.qdata()[static_cast<size_t>(step.qdata)] : nullptr;
    const Shape& out = shape_of(step.output);
    switch (step.kind) {
      case Kind::kLayer: {
        // Float fallback: the layer's own trace (macs, params) carries over.
        step.layer->trace(shape_of(step.input), &infos);
        break;
      }
      case Kind::kQConv: {
        nn::LayerInfo info = step_info(nn::LayerKind::kConv2d, step.layer->name(),
                                       shape_of(step.input), out);
        info.kernel_h = info.kernel_w = q->kernel;
        info.stride = q->stride;
        // Geometry, not q->weights.size(): the packed rows carry alignment
        // padding that never leaves the host.
        info.params = q->out_c * q->in_c * q->kernel * q->kernel +
                      static_cast<int64_t>(q->bias.size());
        Int8ConvSpec spec;
        spec.in_c = q->in_c;
        spec.out_c = q->out_c;
        spec.kernel = q->kernel;
        info.macs = int8_conv2d_macs(spec, out[2], out[3]);
        infos.push_back(std::move(info));
        break;
      }
      case Kind::kQDepthwise: {
        nn::LayerInfo info = step_info(nn::LayerKind::kDepthwiseConv2d, step.layer->name(),
                                       shape_of(step.input), out);
        info.kernel_h = info.kernel_w = q->kernel;
        info.stride = q->stride;
        info.params = static_cast<int64_t>(q->weights.size() + q->bias.size());
        Int8DepthwiseSpec spec;
        spec.channels = q->in_c;
        spec.kernel = q->kernel;
        info.macs = int8_depthwise_macs(spec, out[2], out[3]);
        infos.push_back(std::move(info));
        break;
      }
      case Kind::kQLinear: {
        nn::LayerInfo info = step_info(nn::LayerKind::kLinear, step.layer->name(),
                                       shape_of(step.input), out);
        info.params = static_cast<int64_t>(q->weights.size() + q->bias.size());
        Int8LinearSpec spec;
        spec.in_features = q->in_c;
        spec.out_features = q->out_c;
        info.macs = int8_linear_macs(spec);
        infos.push_back(std::move(info));
        break;
      }
      case Kind::kQActivation:
        infos.push_back(step_info(nn::LayerKind::kActivation, "int8_" + step.layer->name(),
                                  shape_of(step.input), out));
        break;
      case Kind::kQAdd:
        infos.push_back(
            step_info(nn::LayerKind::kElementwise, "int8_add", out, out));
        break;
      case Kind::kQScale:
        infos.push_back(
            step_info(nn::LayerKind::kElementwise, "int8_scale", out, out));
        break;
      case Kind::kQConcat:
        infos.push_back(step_info(nn::LayerKind::kConcat, "int8_concat", out, out));
        break;
      case Kind::kQDepthToSpace:
        infos.push_back(step_info(nn::LayerKind::kDepthToSpace, "int8_depth2space",
                                  shape_of(step.input), out));
        break;
      case Kind::kQTileChannels:
        infos.push_back(step_info(nn::LayerKind::kIdentity, "int8_tile_channels",
                                  shape_of(step.input), out));
        break;
      case Kind::kQuantize:
        infos.push_back(step_info(nn::LayerKind::kIdentity, "quantize",
                                  shape_of(step.input), out));
        break;
      case Kind::kDequantize:
        infos.push_back(step_info(nn::LayerKind::kIdentity, "dequantize",
                                  shape_of(step.input), out));
        break;
      case Kind::kFakeQuant:
        infos.push_back(step_info(nn::LayerKind::kIdentity, "fake_quant", out, out));
        break;
      case Kind::kAdd:
        infos.push_back(step_info(nn::LayerKind::kElementwise, "add", out, out));
        break;
      case Kind::kScale:
        infos.push_back(step_info(nn::LayerKind::kElementwise, "scale", out, out));
        break;
      case Kind::kConcat:
        infos.push_back(step_info(nn::LayerKind::kConcat, "concat", out, out));
        break;
    }
  }
  return infos;
}

Int8PlanCost summarize_int8(const runtime::Program& plan) {
  using Kind = runtime::Op::Kind;
  Int8PlanCost cost;
  for (const nn::LayerInfo& info : int8_plan_layers(plan)) cost.fallback_macs += info.macs;
  // Split integer-kernel MACs out of the total: tally them directly from the
  // plan's lowered steps (the same int8_*_macs the trace above used).
  for (const runtime::Op& step : plan.ops()) {
    if (step.qdata < 0) continue;
    const runtime::QStepData& q = plan.qdata()[static_cast<size_t>(step.qdata)];
    const Shape& out = plan.buffers()[static_cast<size_t>(step.output)].shape;
    int64_t macs = 0;
    int64_t device_weights = static_cast<int64_t>(q.weights.size());
    if (step.kind == Kind::kQConv) {
      Int8ConvSpec spec;
      spec.in_c = q.in_c;
      spec.out_c = q.out_c;
      spec.kernel = q.kernel;
      macs = int8_conv2d_macs(spec, out[2], out[3]);
      device_weights = q.out_c * q.in_c * q.kernel * q.kernel;  // minus host padding
    } else if (step.kind == Kind::kQDepthwise) {
      Int8DepthwiseSpec spec;
      spec.channels = q.in_c;
      spec.kernel = q.kernel;
      macs = int8_depthwise_macs(spec, out[2], out[3]);
    } else if (step.kind == Kind::kQLinear) {
      Int8LinearSpec spec;
      spec.in_features = q.in_c;
      spec.out_features = q.out_c;
      macs = int8_linear_macs(spec);
    } else {
      continue;
    }
    cost.integer_macs += macs;
    cost.weight_bytes += device_weights;  // int8 on device
  }
  cost.fallback_macs -= cost.integer_macs;
  return cost;
}

SramEstimate estimate_sram(const runtime::Program& plan) {
  using Kind = runtime::Op::Kind;
  SramEstimate est;
  est.peak_arena_bytes = plan.peak_arena_bytes();
  est.sum_buffer_bytes = plan.sum_buffer_bytes();
  // Same device-resident weight accounting as summarize_int8, but without
  // its batch-1 restriction (SRAM sizing is legitimate for any batch).
  for (const runtime::Op& op : plan.ops()) {
    if (op.qdata < 0) continue;
    const runtime::QStepData& q = plan.qdata()[static_cast<size_t>(op.qdata)];
    if (op.kind == Kind::kQConv)
      est.weight_bytes += q.out_c * q.in_c * q.kernel * q.kernel;  // minus host padding
    else if (op.kind == Kind::kQDepthwise || op.kind == Kind::kQLinear)
      est.weight_bytes += static_cast<int64_t>(q.weights.size());
  }
  return est;
}

std::string human_count(double value) {
  char buf[32];
  if (value >= 1e12)
    std::snprintf(buf, sizeof(buf), "%.3gT", value / 1e12);
  else if (value >= 1e9)
    std::snprintf(buf, sizeof(buf), "%.3gB", value / 1e9);
  else if (value >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.3gM", value / 1e6);
  else if (value >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.4gK", value / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace sesr::hw
