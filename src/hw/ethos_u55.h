// Arm Ethos-U55 micro-NPU performance model.
//
// A Vela-style analytic estimator: each layer costs the maximum of its
// MAC-array compute cycles and its DMA cycles (int8 tensors streamed through
// a bandwidth-limited memory port), summed over the network.
//
//  - Compute: the 256-MAC/cycle array (U55-256) is modelled as 16 OFM lanes x
//    16 IFM lanes; a convolution therefore takes
//      out_h * out_w * ceil(out_c / 16) * ceil(in_c / 16) * kh * kw
//    cycles, which captures the paper-relevant effect that narrow layers
//    (3- or 12-channel SR heads) under-utilise the array. Depthwise
//    convolutions cannot use the IFM lanes (one input channel per output
//    channel) and cost out_hw * ceil(c / 16) * kh * kw.
//  - Memory: IFM + OFM + weight bytes at `bytes_per_cycle` (default 1.0 —
//    an MCU-class effective external-memory bandwidth of ~1 GB/s at 1 GHz).
//  - Activations are fused into the producing layer (zero cost); elementwise
//    adds, pooling, reshapes and pixel shuffles are DMA-only.
//
// With the defaults, paper-scale workloads land in the paper's Table IV
// regime (FSRCNN ~= 144 ms, SESR-M2 ~= 16-20 ms at 299 -> 598; effective
// throughput ~40-50 GMAC/s of the 256 GMAC/s peak), and — the claim that
// matters — the SESR-M2 : FSRCNN end-to-end FPS ratio comes out near 3x.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.h"
#include "nn/module.h"

namespace sesr::hw {

struct EthosU55Config {
  double clock_hz = 1.0e9;      ///< NPU clock
  int64_t ofm_lanes = 16;       ///< output-channel parallelism of the MAC array
  int64_t ifm_lanes = 16;       ///< input-channel parallelism (256 MACs total)
  double bytes_per_cycle = 1.0; ///< effective memory bandwidth (int8 tensors)
  int64_t bytes_per_element = 1;  ///< int8 deployment
  /// Model Vela's layer cascading: intermediate tensors of inverted-residual
  /// chains (1x1 expand -> depthwise -> 1x1 project) stay on chip. Matters
  /// for MobileNet-style classifiers; no effect on the plain-conv SR nets.
  bool model_cascading = true;

  /// U55-256 at 1 GHz — the 0.5 TOP/s configuration cited by the paper.
  static EthosU55Config u55_256() { return {}; }
  /// U55-128 (half the MAC array).
  static EthosU55Config u55_128() {
    EthosU55Config c;
    c.ifm_lanes = 8;
    return c;
  }
};

struct LayerLatency {
  std::string name;
  int64_t compute_cycles = 0;
  int64_t dma_cycles = 0;
  [[nodiscard]] int64_t cycles() const {
    return compute_cycles > dma_cycles ? compute_cycles : dma_cycles;
  }
};

struct LatencyReport {
  double total_ms = 0.0;
  double fps = 0.0;
  int64_t total_cycles = 0;
  std::vector<LayerLatency> layers;
};

/// Analytic latency estimator for a single-batch inference.
class EthosU55Model {
 public:
  explicit EthosU55Model(EthosU55Config config = {});

  /// Estimate from a structural trace (batch dimension must be 1).
  [[nodiscard]] LatencyReport estimate(const std::vector<nn::LayerInfo>& layers) const;

  /// Convenience: trace `model` at `input` and estimate.
  [[nodiscard]] LatencyReport estimate(const nn::Module& model, const Shape& input) const;

  /// Estimate a *compiled int8 plan* (batch size 1): each lowered step is
  /// priced from the integer kernels' actual op counts (hw::int8_plan_layers)
  /// — conv/depthwise/linear steps on the MAC array, quantise/dequantise
  /// boundaries and pixel ops as pure data movement, activations fused. This
  /// is the latency of the program the runtime executes, not of the float
  /// module structure.
  [[nodiscard]] LatencyReport estimate_int8(const runtime::Program& plan) const;

  [[nodiscard]] const EthosU55Config& config() const { return config_; }

 private:
  [[nodiscard]] LayerLatency price_layer(const nn::LayerInfo& info) const;

  EthosU55Config config_;
};

}  // namespace sesr::hw
