// Analytic network cost accounting (parameters, MACs).
//
// Works on the structural trace (nn::LayerInfo) that every Module emits, so
// costs can be computed for paper-scale architectures without ever allocating
// or running them at paper-scale resolutions. MAC conventions follow the
// paper's Table I: one MAC per (output element x input tap) for convolutions,
// gather-form accounting for transposed convolutions, zero for activations,
// reshapes and elementwise adds. Validated against Table I in the test suite
// (SESR-M2 = 0.948 GMAC, FSRCNN = 5.82 GMAC at 299x299 -> 598x598 RGB).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace sesr::hw {

struct NetworkCost {
  int64_t params = 0;
  int64_t macs = 0;  ///< per single input sample
  std::vector<nn::LayerInfo> layers;
};

/// Trace `model` at `input` (NCHW, batch of 1 recommended) and total up costs.
NetworkCost summarize(const nn::Module& model, const Shape& input);

/// Pretty-print helpers for table rows ("10.6K", "0.948B").
std::string human_count(double value);

}  // namespace sesr::hw
