// Analytic network cost accounting (parameters, MACs).
//
// Works on the structural trace (nn::LayerInfo) that every Module emits, so
// costs can be computed for paper-scale architectures without ever allocating
// or running them at paper-scale resolutions. MAC conventions follow the
// paper's Table I: one MAC per (output element x input tap) for convolutions,
// gather-form accounting for transposed convolutions, zero for activations,
// reshapes and elementwise adds. Validated against Table I in the test suite
// (SESR-M2 = 0.948 GMAC, FSRCNN = 5.82 GMAC at 299x299 -> 598x598 RGB).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "runtime/program.h"

namespace sesr::hw {

struct NetworkCost {
  int64_t params = 0;
  int64_t macs = 0;  ///< per single input sample
  std::vector<nn::LayerInfo> layers;
};

/// Trace `model` at `input` (NCHW, batch of 1 recommended) and total up costs.
NetworkCost summarize(const nn::Module& model, const Shape& input);

/// Cost summary of a lowered int8 plan. integer_macs is exactly the number
/// of integer multiply-accumulates the int8 kernels execute per sample
/// (int8_conv2d_macs and friends — the quantity the Ethos-U55 model prices);
/// fallback_macs covers layers still on the float path; weight_bytes is the
/// int8 weight payload resident on the accelerator.
struct Int8PlanCost {
  int64_t integer_macs = 0;
  int64_t fallback_macs = 0;
  int64_t weight_bytes = 0;
};

/// Tally a compiled int8 program (batch size 1; throws otherwise).
Int8PlanCost summarize_int8(const runtime::Program& plan);

/// Synthesize the LayerInfo trace of a lowered int8 plan — one record per
/// executed step, with int8-kernel MAC counts — so the analytic NPU model
/// prices the *compiled* integer program rather than the float module
/// structure. Quantise/dequantise boundary steps appear as pure data
/// movement; float-fallback layer steps expand to their module's own trace.
std::vector<nn::LayerInfo> int8_plan_layers(const runtime::Program& plan);

/// On-chip activation memory of a compiled program, as the Ethos-U55 SRAM
/// sizing question is actually answered by the arena planner: the deployment
/// needs `peak_arena_bytes` of SRAM for activations, not the
/// one-dedicated-buffer-per-intermediate `sum_buffer_bytes` a structural
/// estimate sums up. `weight_bytes` is the int8 weight payload resident
/// alongside (0 for fp32 programs).
struct SramEstimate {
  int64_t peak_arena_bytes = 0;
  int64_t sum_buffer_bytes = 0;
  int64_t weight_bytes = 0;

  /// Fraction of the sum-of-buffers estimate the planner saves.
  [[nodiscard]] double savings() const {
    return sum_buffer_bytes > 0
               ? 1.0 - static_cast<double>(peak_arena_bytes) /
                           static_cast<double>(sum_buffer_bytes)
               : 0.0;
  }
};

/// SRAM estimate of a compiled program (either precision).
SramEstimate estimate_sram(const runtime::Program& plan);

/// Pretty-print helpers for table rows ("10.6K", "0.948B").
std::string human_count(double value);

}  // namespace sesr::hw
