#include "hw/ethos_u55.h"

#include <stdexcept>

namespace sesr::hw {
namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

int64_t numel_of(const Shape& s) { return s.numel(); }

}  // namespace

EthosU55Model::EthosU55Model(EthosU55Config config) : config_(config) {
  if (config_.clock_hz <= 0 || config_.bytes_per_cycle <= 0 || config_.ofm_lanes <= 0 ||
      config_.ifm_lanes <= 0)
    throw std::invalid_argument("EthosU55Model: non-positive config value");
}

LayerLatency EthosU55Model::price_layer(const nn::LayerInfo& info) const {
  LayerLatency lat;
  lat.name = info.name;

  const int64_t in_elems = numel_of(info.input);
  const int64_t out_elems = numel_of(info.output);
  const int64_t weight_bytes = info.params * config_.bytes_per_element;
  const auto dma = [&](int64_t elems) {
    return static_cast<int64_t>(static_cast<double>(elems * config_.bytes_per_element) /
                                config_.bytes_per_cycle);
  };

  switch (info.kind) {
    case nn::LayerKind::kConv2d: {
      const int64_t out_hw = info.output[2] * info.output[3];
      lat.compute_cycles = out_hw * ceil_div(info.output[1], config_.ofm_lanes) *
                           ceil_div(info.input[1], config_.ifm_lanes) * info.kernel_h *
                           info.kernel_w;
      // Cascading (Vela "block streaming"): 1x1 channel-expansion convs keep
      // their OFM on chip for the fused depthwise stage, and 1x1 projections
      // consume an on-chip IFM — only the narrow end of an inverted-residual
      // block touches external memory.
      int64_t traffic = in_elems + out_elems;
      if (config_.model_cascading && info.kernel_h == 1 && info.kernel_w == 1) {
        if (info.output[1] > info.input[1]) traffic = in_elems;        // expansion
        else if (info.output[1] < info.input[1]) traffic = out_elems;  // projection
      }
      lat.dma_cycles = dma(traffic) + weight_bytes;
      break;
    }
    case nn::LayerKind::kConvTranspose2d: {
      // Executed as a zero-inserted convolution: gather-form cycles over the
      // output grid (consistent with the MAC accounting convention).
      const int64_t out_hw = info.output[2] * info.output[3];
      lat.compute_cycles = out_hw * ceil_div(info.output[1], config_.ofm_lanes) *
                           ceil_div(info.input[1], config_.ifm_lanes) * info.kernel_h *
                           info.kernel_w;
      lat.dma_cycles = dma(in_elems + out_elems) + weight_bytes;
      break;
    }
    case nn::LayerKind::kDepthwiseConv2d: {
      // One input channel per output channel: the IFM lanes are idle.
      const int64_t out_hw = info.output[2] * info.output[3];
      lat.compute_cycles =
          out_hw * ceil_div(info.output[1], config_.ofm_lanes) * info.kernel_h * info.kernel_w;
      // Cascaded between the expansion and projection 1x1s of its block:
      // both IFM and OFM stay on chip.
      lat.dma_cycles = (config_.model_cascading ? 0 : dma(in_elems + out_elems)) + weight_bytes;
      break;
    }
    case nn::LayerKind::kLinear: {
      lat.compute_cycles = ceil_div(info.output[1], config_.ofm_lanes) *
                           ceil_div(info.input[1], config_.ifm_lanes);
      lat.dma_cycles = dma(in_elems + out_elems) + weight_bytes;
      break;
    }
    case nn::LayerKind::kActivation:
      // Fused into the producing layer by the compiler; free.
      break;
    case nn::LayerKind::kElementwise:
      // Residual add: two operand streams in, one out.
      lat.dma_cycles = dma(2 * out_elems + out_elems);
      lat.compute_cycles = out_elems / config_.ofm_lanes;
      break;
    case nn::LayerKind::kPool:
      lat.compute_cycles =
          out_elems * info.kernel_h * info.kernel_w / config_.ofm_lanes;
      lat.dma_cycles = dma(in_elems + out_elems);
      break;
    case nn::LayerKind::kGlobalPool:
      lat.compute_cycles = in_elems / config_.ofm_lanes;
      lat.dma_cycles = dma(in_elems + out_elems);
      break;
    case nn::LayerKind::kDepthToSpace:
    case nn::LayerKind::kConcat:
    case nn::LayerKind::kIdentity:
      // Pure data movement.
      lat.dma_cycles = dma(in_elems + out_elems);
      break;
  }
  return lat;
}

LatencyReport EthosU55Model::estimate(const std::vector<nn::LayerInfo>& layers) const {
  LatencyReport report;
  for (const nn::LayerInfo& info : layers) {
    if (info.input.ndim() >= 1 && info.input[0] != 1)
      throw std::invalid_argument("EthosU55Model::estimate: trace must use batch size 1");
    report.layers.push_back(price_layer(info));
    report.total_cycles += report.layers.back().cycles();
  }
  report.total_ms = 1e3 * static_cast<double>(report.total_cycles) / config_.clock_hz;
  report.fps = report.total_ms > 0 ? 1e3 / report.total_ms : 0.0;
  return report;
}

LatencyReport EthosU55Model::estimate(const nn::Module& model, const Shape& input) const {
  return estimate(model.layers(input));
}

LatencyReport EthosU55Model::estimate_int8(const runtime::Program& plan) const {
  return estimate(int8_plan_layers(plan));
}

}  // namespace sesr::hw
