// Pointwise activations folded into a producing convolution.
//
// The runtime's fusion pass (src/runtime/passes) rewrites a conv -> pointwise
// activation pair into a single op; the conv microkernel then applies the
// activation inside its write-back loop, saving one full pass over the output
// buffer per pair. apply() uses the exact scalar expressions of the
// activations' own infer_into implementations — same operations, same float
// precision, same order — so fusion is bit-exact by construction.
#pragma once

#include <algorithm>
#include <cstdint>

namespace sesr::nn {

class Module;

struct FusedActivation {
  enum class Kind : uint8_t { kNone, kReLU, kReLU6, kLeakyReLU, kPReLU };

  Kind kind = Kind::kNone;
  float slope = 0.0f;                     ///< kLeakyReLU
  const float* channel_slopes = nullptr;  ///< kPReLU: [out_channels], owned by the module

  /// Classify `layer` as a fusable activation (kNone when it is not one).
  /// For PReLU the returned slopes pointer aliases the module's parameter
  /// tensor, so the module must outlive any program holding the result.
  [[nodiscard]] static FusedActivation from(const Module& layer);

  /// Apply to a contiguous row of values produced for output channel `oc`.
  inline void apply(float* row, int64_t count, int64_t oc) const {
    switch (kind) {
      case Kind::kNone:
        return;
      case Kind::kReLU:
        for (int64_t j = 0; j < count; ++j) row[j] = row[j] < 0.0f ? 0.0f : row[j];
        return;
      case Kind::kReLU6:
        for (int64_t j = 0; j < count; ++j) row[j] = std::clamp(row[j], 0.0f, 6.0f);
        return;
      case Kind::kLeakyReLU: {
        const float a = slope;
        for (int64_t j = 0; j < count; ++j) row[j] = row[j] < 0.0f ? row[j] * a : row[j];
        return;
      }
      case Kind::kPReLU: {
        const float a = channel_slopes[oc];
        for (int64_t j = 0; j < count; ++j) row[j] = row[j] < 0.0f ? row[j] * a : row[j];
        return;
      }
    }
  }
};

}  // namespace sesr::nn
