#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace sesr::nn {

LossResult mae_loss(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape())
    throw std::invalid_argument("mae_loss: shape mismatch");
  LossResult result{0.0f, Tensor(prediction.shape())};
  const int64_t n = prediction.numel();
  const float inv = 1.0f / static_cast<float>(n);
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = prediction[i] - target[i];
    acc += std::abs(d);
    result.grad[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) * inv;
  }
  result.value = static_cast<float>(acc * inv);
  return result;
}

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape())
    throw std::invalid_argument("mse_loss: shape mismatch");
  LossResult result{0.0f, Tensor(prediction.shape())};
  const int64_t n = prediction.numel();
  const float inv = 1.0f / static_cast<float>(n);
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = prediction[i] - target[i];
    acc += static_cast<double>(d) * d;
    result.grad[i] = 2.0f * d * inv;
  }
  result.value = static_cast<float>(acc * inv);
  return result;
}

Tensor softmax(const Tensor& logits) {
  if (logits.ndim() != 2) throw std::invalid_argument("softmax: expected [N, K]");
  const int64_t n = logits.dim(0), k = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* orow = out.data() + i * k;
    float mx = row[0];
    for (int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < k; ++j) orow[j] *= inv;
  }
  return out;
}

LossResult cross_entropy_loss(const Tensor& logits, const std::vector<int64_t>& labels) {
  if (logits.ndim() != 2) throw std::invalid_argument("cross_entropy_loss: expected [N, K]");
  const int64_t n = logits.dim(0), k = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n)
    throw std::invalid_argument("cross_entropy_loss: label count mismatch");

  LossResult result{0.0f, softmax(logits)};
  const float inv_n = 1.0f / static_cast<float>(n);
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    if (y < 0 || y >= k) throw std::invalid_argument("cross_entropy_loss: label out of range");
    float* grow = result.grad.data() + i * k;
    // -log p_y, with p already softmax-normalised; clamp avoids -inf.
    acc -= std::log(std::max(grow[y], 1e-12f));
    grow[y] -= 1.0f;
    for (int64_t j = 0; j < k; ++j) grow[j] *= inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

std::vector<int64_t> argmax_rows(const Tensor& logits) {
  if (logits.ndim() != 2) throw std::invalid_argument("argmax_rows: expected [N, K]");
  const int64_t n = logits.dim(0), k = logits.dim(1);
  std::vector<int64_t> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    int64_t best = 0;
    for (int64_t j = 1; j < k; ++j)
      if (row[j] > row[best]) best = j;
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

}  // namespace sesr::nn
