#include "nn/linear.h"

#include <stdexcept>

namespace sesr::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight", Tensor({out_features, in_features})),
      bias_("bias", Tensor({bias ? out_features : 0})) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("Linear: non-positive feature count");
}

std::string Linear::name() const {
  return "linear_" + std::to_string(in_features_) + "_" + std::to_string(out_features_);
}

std::vector<Parameter*> Linear::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) params.push_back(&bias_);
  return params;
}

Shape Linear::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 2 || input[1] != in_features_)
    throw std::invalid_argument("Linear::trace: expected [N, " + std::to_string(in_features_) +
                                "], got " + input.to_string());
  const Shape output{input[0], out_features_};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kLinear;
    info.name = name();
    info.input = input;
    info.output = output;
    info.params = weight_.value.numel() + (has_bias_ ? out_features_ : 0);
    info.macs = in_features_ * out_features_;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor Linear::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_ = input;  // backward needs the full input
  Tensor output(out_shape);
  Workspace unused;  // the matvec needs no scratch
  infer_into(input, output, unused);
  return output;
}

// The one matvec kernel, shared by forward() (which adds caching on top) and
// the compiled runtime.
void Linear::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    const float* x = input.data() + i * in_features_;
    float* y = output.data() + i * out_features_;
    for (int64_t o = 0; o < out_features_; ++o) {
      const float* w = weight_.value.data() + o * in_features_;
      float acc = has_bias_ ? bias_.value[o] : 0.0f;
      for (int64_t j = 0; j < in_features_; ++j) acc += w[j] * x[j];
      y[o] = acc;
    }
  }
}

Tensor Linear::backward(const Tensor& grad_output) {
  const int64_t n = cached_input_.dim(0);
  Tensor grad_input(cached_input_.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* x = cached_input_.data() + i * in_features_;
    const float* g = grad_output.data() + i * out_features_;
    float* gx = grad_input.data() + i * in_features_;
    for (int64_t o = 0; o < out_features_; ++o) {
      const float go = g[o];
      const float* w = weight_.value.data() + o * in_features_;
      float* gw = weight_.grad.data() + o * in_features_;
      for (int64_t j = 0; j < in_features_; ++j) {
        gx[j] += go * w[j];
        gw[j] += go * x[j];
      }
      if (has_bias_) bias_.grad[o] += go;
    }
  }
  return grad_input;
}

}  // namespace sesr::nn
