#include "nn/conv2d.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/parallel.h"
#include "tensor/simd/dispatch.h"

namespace sesr::nn {
namespace {

// Expand one sample's input patch matrix: col[(c*kh*kw + ki), (oh*out_w + ow)]
// = input[c, oh*stride - pad + ki_h, ow*stride - pad + ki_w] (0 outside).
void im2col(const float* in, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad,
            int64_t out_h, int64_t out_w, float* col) {
  const int64_t out_hw = out_h * out_w;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        float* col_row = col + ((c * kernel + kh) * kernel + kw) * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          float* dst = col_row + oh * out_w;
          if (ih < 0 || ih >= h) {
            for (int64_t ow = 0; ow < out_w; ++ow) dst[ow] = 0.0f;
            continue;
          }
          const float* src_row = in + (c * h + ih) * w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            dst[ow] = (iw >= 0 && iw < w) ? src_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

// Inverse of im2col: scatter-add columns back into the (zeroed) input image.
void col2im(const float* col, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad,
            int64_t out_h, int64_t out_w, float* in) {
  const int64_t out_hw = out_h * out_w;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        const float* col_row = col + ((c * kernel + kh) * kernel + kw) * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= h) continue;
          float* dst_row = in + (c * h + ih) * w;
          const float* src = col_row + oh * out_w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < w) dst_row[iw] += src[ow];
          }
        }
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(Conv2dOptions opts)
    : opts_(opts),
      weight_("weight",
              Tensor({opts.out_channels, opts.in_channels, opts.kernel, opts.kernel})),
      bias_("bias", Tensor({opts.bias ? opts.out_channels : 0})) {
  if (opts_.in_channels <= 0 || opts_.out_channels <= 0 || opts_.kernel <= 0 || opts_.stride <= 0)
    throw std::invalid_argument("Conv2d: non-positive dimension in options");
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(opts_.kernel) + "x" + std::to_string(opts_.kernel) + "_" +
         std::to_string(opts_.in_channels) + "_" + std::to_string(opts_.out_channels) +
         (opts_.stride != 1 ? "_s" + std::to_string(opts_.stride) : "");
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (opts_.bias) params.push_back(&bias_);
  return params;
}

Shape Conv2d::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4 || input[1] != opts_.in_channels)
    throw std::invalid_argument("Conv2d::trace: bad input shape " + input.to_string() +
                                " for " + name());
  const Shape output{input[0], opts_.out_channels, out_extent(input[2]), out_extent(input[3])};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kConv2d;
    info.name = name();
    info.input = input;
    info.output = output;
    info.kernel_h = info.kernel_w = opts_.kernel;
    info.stride = opts_.stride;
    info.params = weight_.value.numel() + (opts_.bias ? opts_.out_channels : 0);
    // Per-sample MACs: one multiply per (output element, input-channel tap).
    info.macs = output[2] * output[3] * opts_.out_channels * opts_.in_channels *
                opts_.kernel * opts_.kernel;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor Conv2d::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_ = input;

  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel;
  const int64_t out_h = out_shape[2], out_w = out_shape[3], out_hw = out_h * out_w;
  const int64_t col_rows = c_in * k * k;
  const int64_t pad = opts_.effective_padding();

  Tensor output(out_shape);
  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    std::vector<float> col(static_cast<size_t>(col_rows * out_hw));
    for (int64_t i = lo; i < hi; ++i) {
      im2col(input.data() + i * c_in * h * w, c_in, h, w, k, opts_.stride, pad,
             out_h, out_w, col.data());
      float* out_ptr = output.data() + i * c_out * out_hw;
      // out[c_out, out_hw] = W[c_out, col_rows] * col[col_rows, out_hw]
      gemm_accumulate(c_out, out_hw, col_rows, weight_.value.data(), col_rows,
                      col.data(), out_hw, out_ptr, out_hw);
      if (opts_.bias) {
        for (int64_t oc = 0; oc < c_out; ++oc) {
          const float b = bias_.value[oc];
          float* row = out_ptr + oc * out_hw;
          for (int64_t j = 0; j < out_hw; ++j) row[j] += b;
        }
      }
    }
  });
  return output;
}

namespace {

constexpr int kRegBlock = 16;  // output columns per register-accumulated block
constexpr int64_t kRowTile = 4;  // output channels per dispatch microkernel call

// Tail columns (out_w % 16): plain scalar, shared by every dispatch tier —
// the vector tiers deliberately never read past a 16-column block, so the
// tail cannot diverge across variants. The per-element addition sequence —
// ascending p from a 0.0f accumulator, zero weights skipped — is exactly the
// sequence gemm_accumulate produces into a zeroed C, so results are
// bit-identical to the im2col + GEMM path.
inline void conv_out_block_tail(const float* __restrict w_row, const float* __restrict slab,
                                int64_t col_rows, int64_t slab_stride, int64_t block,
                                float* __restrict dst) {
  float acc[kRegBlock] = {};
  for (int64_t p = 0; p < col_rows; ++p) {
    const float wv = w_row[p];
    if (wv == 0.0f) continue;
    const float* r = slab + p * slab_stride;
    for (int64_t b = 0; b < block; ++b) acc[b] += wv * r[b];
  }
  for (int64_t b = 0; b < block; ++b) dst[b] = acc[b];
}

}  // namespace

// Serving-path convolution: implicit im2col one output row at a time (a
// col_rows x out_w slab that stays cache-resident) feeding the register-
// blocked microkernel above, so the full column matrix is never built and
// the output is written exactly once. Padding taps enter the slab as 0.0f —
// the same values im2col materialises — keeping every per-element addition
// identical to forward()'s im2col + GEMM + bias pipeline. Work fans out over
// (image, output row) pairs so a single-image request still uses every core;
// each parallel chunk claims a private slab carved from the workspace before
// the fan-out (per-element results are thread-placement independent).
void Conv2d::infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const {
  infer_into_fused(input, output, workspace, FusedActivation{});
}

void Conv2d::infer_into_fused(const Tensor& input, Tensor& output, Workspace& workspace,
                              const FusedActivation& act,
                              const simd::KernelDispatch* dispatch) const {
  const simd::KernelDispatch& kd =
      dispatch != nullptr ? *dispatch : simd::active_dispatch();
  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel, stride = opts_.stride;
  const int64_t out_h = output.dim(2), out_w = output.dim(3), out_hw = out_h * out_w;
  const int64_t pad = opts_.effective_padding();
  const int64_t col_rows = c_in * k * k;

  const int64_t slab_floats = col_rows * out_w;
  const int64_t max_slots = std::min<int64_t>(num_threads(), std::max<int64_t>(1, n * out_h));
  std::span<float> slabs = workspace.floats(max_slots * slab_floats);
  std::atomic<int64_t> next_slot{0};
  parallel_for(0, n * out_h, [&](int64_t lo, int64_t hi) {
    const int64_t slot = next_slot.fetch_add(1);
    // parallel_for invokes fn once per chunk and creates at most
    // min(num_threads(), range) chunks; guard that coupling explicitly so a
    // future chunk-policy change cannot silently overrun the slab pool.
    if (slot >= max_slots)
      throw std::logic_error("Conv2d::infer_into: parallel_for issued more chunks than slabs");
    float* slab = slabs.data() + slot * slab_floats;
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t i = idx / out_h, oh = idx % out_h;
      const float* in_ptr = input.data() + i * c_in * h * w;
      float* out_ptr = output.data() + i * c_out * out_hw;
      // im2col restricted to this output row: slab[p][ow], p = (ic, kh, kw).
      float* srow = slab;
      for (int64_t ic = 0; ic < c_in; ++ic) {
        for (int64_t kh = 0; kh < k; ++kh) {
          const int64_t ih = oh * stride - pad + kh;
          const float* src_row = (ih >= 0 && ih < h) ? in_ptr + (ic * h + ih) * w : nullptr;
          for (int64_t kw = 0; kw < k; ++kw, srow += out_w) {
            if (src_row == nullptr) {
              for (int64_t ow = 0; ow < out_w; ++ow) srow[ow] = 0.0f;
              continue;
            }
            if (stride == 1) {
              // iw = ow + (kw - pad): a shifted contiguous copy with zero
              // fringes, instead of a per-element bounds-checked gather.
              const int64_t shift = kw - pad;
              const int64_t valid_lo = std::max<int64_t>(0, -shift);
              const int64_t valid_hi = std::min(out_w, w - shift);
              for (int64_t ow = 0; ow < valid_lo; ++ow) srow[ow] = 0.0f;
              if (valid_hi > valid_lo)
                std::copy(src_row + valid_lo + shift, src_row + valid_hi + shift,
                          srow + valid_lo);
              for (int64_t ow = std::max(valid_lo, valid_hi); ow < out_w; ++ow)
                srow[ow] = 0.0f;
              continue;
            }
            for (int64_t ow = 0; ow < out_w; ++ow) {
              const int64_t iw = ow * stride - pad + kw;
              srow[ow] = (iw >= 0 && iw < w) ? src_row[iw] : 0.0f;
            }
          }
        }
      }
      // Register tile: up to 4 output channels per microkernel call share
      // every slab vector load (dst rows stride out_hw apart).
      for (int64_t oc0 = 0; oc0 < c_out; oc0 += kRowTile) {
        const int rows = static_cast<int>(std::min(kRowTile, c_out - oc0));
        const float* w_rows = weight_.value.data() + oc0 * col_rows;
        float* out_rows = out_ptr + oc0 * out_hw + oh * out_w;
        int64_t ow = 0;
        for (; ow + kRegBlock <= out_w; ow += kRegBlock)
          kd.conv_block16(w_rows, col_rows, rows, slab + ow, col_rows, out_w,
                          out_rows + ow, out_hw);
        if (ow < out_w)
          for (int r = 0; r < rows; ++r)
            conv_out_block_tail(w_rows + r * col_rows, slab + ow, col_rows, out_w,
                                out_w - ow, out_rows + r * out_hw + ow);
        for (int r = 0; r < rows; ++r) {
          float* out_row = out_rows + r * out_hw;
          if (opts_.bias) {
            const float b = bias_.value[oc0 + r];
            for (int64_t j = 0; j < out_w; ++j) out_row[j] += b;
          }
          act.apply(out_row, out_w, oc0 + r);
        }
      }
    }
  });
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel;
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);
  const int64_t out_hw = out_h * out_w;
  const int64_t col_rows = c_in * k * k;
  const int64_t pad = opts_.effective_padding();

  Tensor grad_input(input.shape());

  // Per-thread weight/bias gradient accumulators, reduced at the end: keeps
  // the batch loop embarrassingly parallel without atomics.
  const int threads = num_threads();
  std::vector<Tensor> wgrads(static_cast<size_t>(threads), Tensor(weight_.value.shape()));
  std::vector<Tensor> bgrads(static_cast<size_t>(threads),
                             Tensor({opts_.bias ? c_out : 0}));
  std::atomic<int> next_slot{0};

  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    const int slot = next_slot.fetch_add(1);
    Tensor& wgrad = wgrads[static_cast<size_t>(slot)];
    Tensor& bgrad = bgrads[static_cast<size_t>(slot)];
    std::vector<float> col(static_cast<size_t>(col_rows * out_hw));
    std::vector<float> col_grad(static_cast<size_t>(col_rows * out_hw));
    for (int64_t i = lo; i < hi; ++i) {
      const float* g_out = grad_output.data() + i * c_out * out_hw;
      // dW += g_out[c_out, out_hw] * col^T  -> use A*B^T via explicit loop:
      im2col(input.data() + i * c_in * h * w, c_in, h, w, k, opts_.stride, pad,
             out_h, out_w, col.data());
      for (int64_t oc = 0; oc < c_out; ++oc) {
        const float* grow = g_out + oc * out_hw;
        float* wrow = wgrad.data() + oc * col_rows;
        for (int64_t r = 0; r < col_rows; ++r) {
          const float* crow = col.data() + r * out_hw;
          float acc = 0.0f;
          for (int64_t j = 0; j < out_hw; ++j) acc += grow[j] * crow[j];
          wrow[r] += acc;
        }
        if (opts_.bias) {
          float acc = 0.0f;
          for (int64_t j = 0; j < out_hw; ++j) acc += grow[j];
          bgrad[oc] += acc;
        }
      }
      // d(col) = W^T[col_rows, c_out] * g_out[c_out, out_hw]
      std::fill(col_grad.begin(), col_grad.end(), 0.0f);
      gemm_at_b_accumulate(col_rows, out_hw, c_out, weight_.value.data(), col_rows,
                           g_out, out_hw, col_grad.data(), out_hw);
      col2im(col_grad.data(), c_in, h, w, k, opts_.stride, pad, out_h, out_w,
             grad_input.data() + i * c_in * h * w);
    }
  });

  const int used = next_slot.load();
  for (int t = 0; t < used; ++t) {
    weight_.grad.add_(wgrads[static_cast<size_t>(t)]);
    if (opts_.bias) bias_.grad.add_(bgrads[static_cast<size_t>(t)]);
  }
  return grad_input;
}

}  // namespace sesr::nn
