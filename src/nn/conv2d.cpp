#include "nn/conv2d.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace sesr::nn {
namespace {

// Expand one sample's input patch matrix: col[(c*kh*kw + ki), (oh*out_w + ow)]
// = input[c, oh*stride - pad + ki_h, ow*stride - pad + ki_w] (0 outside).
void im2col(const float* in, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad,
            int64_t out_h, int64_t out_w, float* col) {
  const int64_t out_hw = out_h * out_w;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        float* col_row = col + ((c * kernel + kh) * kernel + kw) * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          float* dst = col_row + oh * out_w;
          if (ih < 0 || ih >= h) {
            for (int64_t ow = 0; ow < out_w; ++ow) dst[ow] = 0.0f;
            continue;
          }
          const float* src_row = in + (c * h + ih) * w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            dst[ow] = (iw >= 0 && iw < w) ? src_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

// Inverse of im2col: scatter-add columns back into the (zeroed) input image.
void col2im(const float* col, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad,
            int64_t out_h, int64_t out_w, float* in) {
  const int64_t out_hw = out_h * out_w;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        const float* col_row = col + ((c * kernel + kh) * kernel + kw) * out_hw;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= h) continue;
          float* dst_row = in + (c * h + ih) * w;
          const float* src = col_row + oh * out_w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < w) dst_row[iw] += src[ow];
          }
        }
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(Conv2dOptions opts)
    : opts_(opts),
      weight_("weight",
              Tensor({opts.out_channels, opts.in_channels, opts.kernel, opts.kernel})),
      bias_("bias", Tensor({opts.bias ? opts.out_channels : 0})) {
  if (opts_.in_channels <= 0 || opts_.out_channels <= 0 || opts_.kernel <= 0 || opts_.stride <= 0)
    throw std::invalid_argument("Conv2d: non-positive dimension in options");
}

std::string Conv2d::name() const {
  return "conv" + std::to_string(opts_.kernel) + "x" + std::to_string(opts_.kernel) + "_" +
         std::to_string(opts_.in_channels) + "_" + std::to_string(opts_.out_channels) +
         (opts_.stride != 1 ? "_s" + std::to_string(opts_.stride) : "");
}

std::vector<Parameter*> Conv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (opts_.bias) params.push_back(&bias_);
  return params;
}

Shape Conv2d::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4 || input[1] != opts_.in_channels)
    throw std::invalid_argument("Conv2d::trace: bad input shape " + input.to_string() +
                                " for " + name());
  const Shape output{input[0], opts_.out_channels, out_extent(input[2]), out_extent(input[3])};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kConv2d;
    info.name = name();
    info.input = input;
    info.output = output;
    info.kernel_h = info.kernel_w = opts_.kernel;
    info.stride = opts_.stride;
    info.params = weight_.value.numel() + (opts_.bias ? opts_.out_channels : 0);
    // Per-sample MACs: one multiply per (output element, input-channel tap).
    info.macs = output[2] * output[3] * opts_.out_channels * opts_.in_channels *
                opts_.kernel * opts_.kernel;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor Conv2d::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_ = input;

  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel;
  const int64_t out_h = out_shape[2], out_w = out_shape[3], out_hw = out_h * out_w;
  const int64_t col_rows = c_in * k * k;
  const int64_t pad = opts_.effective_padding();

  Tensor output(out_shape);
  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    std::vector<float> col(static_cast<size_t>(col_rows * out_hw));
    for (int64_t i = lo; i < hi; ++i) {
      im2col(input.data() + i * c_in * h * w, c_in, h, w, k, opts_.stride, pad,
             out_h, out_w, col.data());
      float* out_ptr = output.data() + i * c_out * out_hw;
      // out[c_out, out_hw] = W[c_out, col_rows] * col[col_rows, out_hw]
      gemm_accumulate(c_out, out_hw, col_rows, weight_.value.data(), col_rows,
                      col.data(), out_hw, out_ptr, out_hw);
      if (opts_.bias) {
        for (int64_t oc = 0; oc < c_out; ++oc) {
          const float b = bias_.value[oc];
          float* row = out_ptr + oc * out_hw;
          for (int64_t j = 0; j < out_hw; ++j) row[j] += b;
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel;
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);
  const int64_t out_hw = out_h * out_w;
  const int64_t col_rows = c_in * k * k;
  const int64_t pad = opts_.effective_padding();

  Tensor grad_input(input.shape());

  // Per-thread weight/bias gradient accumulators, reduced at the end: keeps
  // the batch loop embarrassingly parallel without atomics.
  const int threads = num_threads();
  std::vector<Tensor> wgrads(static_cast<size_t>(threads), Tensor(weight_.value.shape()));
  std::vector<Tensor> bgrads(static_cast<size_t>(threads),
                             Tensor({opts_.bias ? c_out : 0}));
  std::atomic<int> next_slot{0};

  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    const int slot = next_slot.fetch_add(1);
    Tensor& wgrad = wgrads[static_cast<size_t>(slot)];
    Tensor& bgrad = bgrads[static_cast<size_t>(slot)];
    std::vector<float> col(static_cast<size_t>(col_rows * out_hw));
    std::vector<float> col_grad(static_cast<size_t>(col_rows * out_hw));
    for (int64_t i = lo; i < hi; ++i) {
      const float* g_out = grad_output.data() + i * c_out * out_hw;
      // dW += g_out[c_out, out_hw] * col^T  -> use A*B^T via explicit loop:
      im2col(input.data() + i * c_in * h * w, c_in, h, w, k, opts_.stride, pad,
             out_h, out_w, col.data());
      for (int64_t oc = 0; oc < c_out; ++oc) {
        const float* grow = g_out + oc * out_hw;
        float* wrow = wgrad.data() + oc * col_rows;
        for (int64_t r = 0; r < col_rows; ++r) {
          const float* crow = col.data() + r * out_hw;
          float acc = 0.0f;
          for (int64_t j = 0; j < out_hw; ++j) acc += grow[j] * crow[j];
          wrow[r] += acc;
        }
        if (opts_.bias) {
          float acc = 0.0f;
          for (int64_t j = 0; j < out_hw; ++j) acc += grow[j];
          bgrad[oc] += acc;
        }
      }
      // d(col) = W^T[col_rows, c_out] * g_out[c_out, out_hw]
      std::fill(col_grad.begin(), col_grad.end(), 0.0f);
      gemm_at_b_accumulate(col_rows, out_hw, c_out, weight_.value.data(), col_rows,
                           g_out, out_hw, col_grad.data(), out_hw);
      col2im(col_grad.data(), c_in, h, w, k, opts_.stride, pad, out_h, out_w,
             grad_input.data() + i * c_in * h * w);
    }
  });

  const int used = next_slot.load();
  for (int t = 0; t < used; ++t) {
    weight_.grad.add_(wgrads[static_cast<size_t>(t)]);
    if (opts_.bias) bias_.grad.add_(bgrads[static_cast<size_t>(t)]);
  }
  return grad_input;
}

}  // namespace sesr::nn
