// Post-training fake quantisation.
//
// The Ethos-U55 deployment the paper targets runs int8; this module lets the
// repo answer the fidelity question "does the defense survive int8?" without
// a full integer kernel stack: weights (and optionally activations at module
// boundaries) are rounded through an affine int-N grid and back to float
// ("fake quant"), which reproduces exactly the representational error of an
// integer deployment while reusing the float kernels.
//
// The *executed*-integer-arithmetic path lives in src/quant (calibration
// observers, per-channel QParams, QuantizedModel artifacts) and src/runtime
// (int8 plan compilation); this header remains the lightweight float-only
// emulation used for arbitrary bit widths and for layers without integer
// kernels.
#pragma once

#include <cstdint>

#include "nn/module.h"

namespace sesr::nn {

struct QuantizationSpec {
  int bits = 8;
  bool symmetric = true;  ///< symmetric (weights) vs asymmetric (activations)
};

/// Round `values` through the int-`bits` grid implied by its min/max and back
/// to float, in place. Symmetric grids span [-qmax, qmax] with zero at the
/// centre; asymmetric grids are widened to contain 0 and anchored so 0 is
/// exactly representable. Degenerate ranges (constant tensors, min == max,
/// all zeros) are hardened to a positive width: the returned scale is always
/// positive and finite, and no input produces NaN. Throws on non-finite
/// values or bits outside [2, 16].
float fake_quantize_(Tensor& values, const QuantizationSpec& spec = {});

/// Fake-quantise every parameter of `module` in place (per-tensor scales,
/// symmetric), emulating post-training weight quantisation.
void quantize_weights_(Module& module, const QuantizationSpec& spec = {});

/// Wraps a module so its input and output pass through activation fake
/// quantisation (asymmetric), emulating int8 tensors at layer boundaries.
/// Forward-only (backward passes gradients straight through), which is all
/// the defense pipeline needs at inference time.
class QuantizedInference final : public Module {
 public:
  QuantizedInference(ModulePtr body, QuantizationSpec weight_spec = {},
                     QuantizationSpec activation_spec = {.bits = 8, .symmetric = false});

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override { return body_->backward(grad_output); }
  std::vector<Parameter*> parameters() override { return body_->parameters(); }
  [[nodiscard]] std::string name() const override { return body_->name() + "_int8"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override {
    return body_->trace(input, out);
  }

 private:
  ModulePtr body_;
  QuantizationSpec activation_spec_;
};

}  // namespace sesr::nn
