// Numerical gradient verification.
//
// Central-difference checks used by the test suite to pin every layer's
// backward pass against its forward pass. Kept in the library (not the tests)
// so examples and downstream users can validate custom modules too.
#pragma once

#include <functional>
#include <string>

#include "nn/module.h"
#include "tensor/rng.h"

namespace sesr::nn {

struct GradCheckResult {
  bool passed = false;
  float max_rel_error = 0.0f;  ///< worst relative error across checked coordinates
  std::string detail;          ///< human-readable description of the worst mismatch
};

struct GradCheckOptions {
  float epsilon = 1e-2f;        ///< central-difference step (float32 needs a coarse step)
  float tolerance = 5e-2f;      ///< max allowed relative error
  int max_coords = 24;          ///< coordinates sampled per tensor (full check is O(n) forwards)
  /// Compare the sampled coordinates as vectors (relative L2 error) instead
  /// of worst-coordinate relative error. Use for deep piecewise-linear
  /// models, where individual near-kink or near-zero-gradient coordinates
  /// produce outliers that say nothing about gradient correctness.
  bool aggregate_l2 = false;
  uint64_t seed = 7;
};

/// Check d(sum(module(x) * r))/dx against the analytic input gradient for a
/// random projection vector r, sampling coordinates of x.
GradCheckResult check_input_gradient(Module& module, const Tensor& input,
                                     const GradCheckOptions& opts = {});

/// Check parameter gradients of `module` at `input` the same way.
GradCheckResult check_parameter_gradients(Module& module, const Tensor& input,
                                          const GradCheckOptions& opts = {});

/// Directional-derivative check for deep composite models: compares
/// (f(x + eps d) - f(x - eps d)) / (2 eps) against grad . d for several
/// random directions d. Piecewise-linear kinks (ReLU/PReLU) contribute only
/// an O(eps)-measure error to the projection, so this check stays stable
/// where the per-coordinate check produces false alarms in hidden layers.
GradCheckResult check_input_gradient_directional(Module& module, const Tensor& input,
                                                 const GradCheckOptions& opts = {},
                                                 int num_directions = 6);

/// Push every coordinate of `t` at least `margin` away from zero (in place).
/// Used to keep layer-level central differences away from ReLU-family kinks.
void bias_away_from_zero_(Tensor& t, float margin);

}  // namespace sesr::nn
