#include "nn/depthwise_conv2d.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"

namespace sesr::nn {

DepthwiseConv2d::DepthwiseConv2d(DepthwiseConv2dOptions opts)
    : opts_(opts),
      weight_("weight", Tensor({opts.channels, 1, opts.kernel, opts.kernel})),
      bias_("bias", Tensor({opts.bias ? opts.channels : 0})) {
  if (opts_.channels <= 0 || opts_.kernel <= 0 || opts_.stride <= 0)
    throw std::invalid_argument("DepthwiseConv2d: non-positive dimension in options");
}

std::string DepthwiseConv2d::name() const {
  return "dwconv" + std::to_string(opts_.kernel) + "x" + std::to_string(opts_.kernel) + "_" +
         std::to_string(opts_.channels) +
         (opts_.stride != 1 ? "_s" + std::to_string(opts_.stride) : "");
}

std::vector<Parameter*> DepthwiseConv2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (opts_.bias) params.push_back(&bias_);
  return params;
}

Shape DepthwiseConv2d::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4 || input[1] != opts_.channels)
    throw std::invalid_argument("DepthwiseConv2d::trace: bad input shape " + input.to_string());
  const Shape output{input[0], opts_.channels, out_extent(input[2]), out_extent(input[3])};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kDepthwiseConv2d;
    info.name = name();
    info.input = input;
    info.output = output;
    info.kernel_h = info.kernel_w = opts_.kernel;
    info.stride = opts_.stride;
    info.params = weight_.value.numel() + (opts_.bias ? opts_.channels : 0);
    info.macs = output[2] * output[3] * opts_.channels * opts_.kernel * opts_.kernel;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor DepthwiseConv2d::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_ = input;  // backward needs the full input
  Tensor output(out_shape);
  Workspace unused;  // the direct kernel needs no scratch
  infer_into(input, output, unused);
  return output;
}

// The one direct-convolution kernel, shared by forward() (which adds caching
// on top) and the compiled runtime. Every output element is written, so no
// pre-zeroing is needed.
void DepthwiseConv2d::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0), c = opts_.channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t k = opts_.kernel, pad = opts_.effective_padding(), stride = opts_.stride;
  const int64_t out_h = output.dim(2), out_w = output.dim(3);

  parallel_for(0, n * c, [&](int64_t lo, int64_t hi) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t ch = idx % c;
      const float* in_plane = input.data() + idx * h * w;
      const float* w_plane = weight_.value.data() + ch * k * k;
      const float b = opts_.bias ? bias_.value[ch] : 0.0f;
      float* out_plane = output.data() + idx * out_h * out_w;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          float acc = b;
          for (int64_t kh = 0; kh < k; ++kh) {
            const int64_t ih = oh * stride - pad + kh;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t iw = ow * stride - pad + kw;
              if (iw < 0 || iw >= w) continue;
              acc += in_plane[ih * w + iw] * w_plane[kh * k + kw];
            }
          }
          out_plane[oh * out_w + ow] = acc;
        }
      }
    }
  });
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int64_t n = input.dim(0), c = opts_.channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t k = opts_.kernel, pad = opts_.effective_padding(), stride = opts_.stride;
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);

  Tensor grad_input(input.shape());
  const int threads = num_threads();
  std::vector<Tensor> wgrads(static_cast<size_t>(threads), Tensor(weight_.value.shape()));
  std::vector<Tensor> bgrads(static_cast<size_t>(threads), Tensor({opts_.bias ? c : 0}));
  std::atomic<int> next_slot{0};

  parallel_for(0, n * c, [&](int64_t lo, int64_t hi) {
    const int slot = next_slot.fetch_add(1);
    Tensor& wgrad = wgrads[static_cast<size_t>(slot)];
    Tensor& bgrad = bgrads[static_cast<size_t>(slot)];
    for (int64_t idx = lo; idx < hi; ++idx) {
      const int64_t ch = idx % c;
      const float* in_plane = input.data() + idx * h * w;
      const float* g_plane = grad_output.data() + idx * out_h * out_w;
      const float* w_plane = weight_.value.data() + ch * k * k;
      float* gin_plane = grad_input.data() + idx * h * w;
      float* wg_plane = wgrad.data() + ch * k * k;
      float bias_acc = 0.0f;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float g = g_plane[oh * out_w + ow];
          bias_acc += g;
          if (g == 0.0f) continue;
          for (int64_t kh = 0; kh < k; ++kh) {
            const int64_t ih = oh * stride - pad + kh;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t iw = ow * stride - pad + kw;
              if (iw < 0 || iw >= w) continue;
              gin_plane[ih * w + iw] += g * w_plane[kh * k + kw];
              wg_plane[kh * k + kw] += g * in_plane[ih * w + iw];
            }
          }
        }
      }
      if (opts_.bias) bgrad[ch] += bias_acc;
    }
  });

  const int used = next_slot.load();
  for (int t = 0; t < used; ++t) {
    weight_.grad.add_(wgrads[static_cast<size_t>(t)]);
    if (opts_.bias) bias_.grad.add_(bgrads[static_cast<size_t>(t)]);
  }
  return grad_input;
}

}  // namespace sesr::nn
