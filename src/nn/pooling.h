// Spatial pooling layers.
#pragma once

#include "nn/module.h"

namespace sesr::nn {

/// Non-overlapping-capable max pooling (kernel, stride, zero padding).
class MaxPool2d final : public Module {
 public:
  MaxPool2d(int64_t kernel, int64_t stride, int64_t padding = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;

 private:
  int64_t kernel_, stride_, padding_;
  Shape cached_input_shape_;
  std::vector<int64_t> argmax_;  // flat input index of each output's max
};

/// Average pooling (zero padding counts toward the divisor, i.e.
/// count_include_pad semantics).
class AvgPool2d final : public Module {
 public:
  AvgPool2d(int64_t kernel, int64_t stride, int64_t padding = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;

 private:
  int64_t kernel_, stride_, padding_;
  Shape cached_input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C]. Makes the classifiers
/// fully convolutional, so one set of weights serves both the raw input
/// resolution (attack crafting) and the x2-upscaled resolution (defended
/// inference), mirroring the paper's 299 -> 598 flow.
class GlobalAvgPool final : public Module {
 public:
  GlobalAvgPool() = default;

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "global_avg_pool"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;

 private:
  Shape cached_input_shape_;
};

}  // namespace sesr::nn
