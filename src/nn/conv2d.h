// Dense 2-D convolution (im2col + GEMM).
//
// The workhorse layer of every SR network and classifier in the model zoo.
// Weight layout: [out_channels, in_channels, kernel_h, kernel_w].
#pragma once

#include "nn/fused_activation.h"
#include "nn/module.h"

namespace sesr::simd {
struct KernelDispatch;
}  // namespace sesr::simd

namespace sesr::nn {

/// Convolution hyper-parameters shared by Conv2d construction helpers.
struct Conv2dOptions {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = -1;  ///< -1 selects "same" padding (kernel / 2)
  bool bias = true;

  [[nodiscard]] int64_t effective_padding() const { return padding < 0 ? kernel / 2 : padding; }
};

/// 2-D convolution over NCHW batches.
class Conv2d final : public Module {
 public:
  /// Weights are zero until initialised (see nn/init.h or set_weights).
  explicit Conv2d(Conv2dOptions opts);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  /// infer_into with a pointwise activation applied inside the write-back
  /// loop (the runtime's conv -> activation fusion). Bit-identical to
  /// infer_into followed by the activation's own infer_into. `dispatch`
  /// selects the SIMD kernel tier for the microkernel (null = the
  /// process-active tier; compiled Programs pass their recorded variant) —
  /// every tier produces bit-identical fp32 results for finite inputs, per
  /// the contract in tensor/simd/dispatch.h.
  void infer_into_fused(const Tensor& input, Tensor& output, Workspace& workspace,
                        const FusedActivation& act,
                        const simd::KernelDispatch* dispatch = nullptr) const;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

  [[nodiscard]] const Conv2dOptions& options() const { return opts_; }
  [[nodiscard]] Parameter& weight() { return weight_; }
  /// Valid only when constructed with bias = true.
  [[nodiscard]] Parameter& bias() { return bias_; }
  [[nodiscard]] bool has_bias() const { return opts_.bias; }

  /// Output spatial extent for an input extent (shared by trace/forward).
  [[nodiscard]] int64_t out_extent(int64_t in_extent) const {
    return (in_extent + 2 * opts_.effective_padding() - opts_.kernel) / opts_.stride + 1;
  }

 private:
  Conv2dOptions opts_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;  // saved by forward for backward
};

}  // namespace sesr::nn
