#include "nn/groupnorm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesr::nn {

GroupNorm::GroupNorm(int64_t channels, int64_t groups, float eps, float init_gamma)
    : channels_(channels),
      groups_(groups),
      eps_(eps),
      gamma_("gn_gamma", Tensor({channels}, init_gamma)),
      beta_("gn_beta", Tensor({channels}, 0.0f)) {
  if (channels <= 0 || groups <= 0 || channels % groups != 0)
    throw std::invalid_argument("GroupNorm: channels must be divisible by groups");
}

std::string GroupNorm::name() const {
  return "groupnorm_" + std::to_string(channels_) + "_g" + std::to_string(groups_);
}

Shape GroupNorm::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4 || input[1] != channels_)
    throw std::invalid_argument("GroupNorm::trace: bad input " + input.to_string());
  if (out) {
    LayerInfo info;
    // Folds into the preceding convolution at deployment: free on the NPU.
    info.kind = LayerKind::kActivation;
    info.name = name();
    info.input = input;
    info.output = input;
    info.params = 2 * channels_;
    out->push_back(std::move(info));
  }
  return input;
}

Tensor GroupNorm::forward(const Tensor& input) {
  trace(input.shape(), nullptr);
  cached_input_ = input;
  const int64_t n = input.dim(0), hw = input.dim(2) * input.dim(3);
  const int64_t cpg = channels_ / groups_;      // channels per group
  const int64_t group_sz = cpg * hw;

  cached_mean_.assign(static_cast<size_t>(n * groups_), 0.0f);
  cached_inv_std_.assign(static_cast<size_t>(n * groups_), 0.0f);

  Tensor out(input.shape());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t g = 0; g < groups_; ++g) {
      const float* src = input.data() + (i * channels_ + g * cpg) * hw;
      double sum = 0.0, sum_sq = 0.0;
      for (int64_t j = 0; j < group_sz; ++j) {
        sum += src[j];
        sum_sq += static_cast<double>(src[j]) * src[j];
      }
      const float mean = static_cast<float>(sum / static_cast<double>(group_sz));
      const float var =
          static_cast<float>(sum_sq / static_cast<double>(group_sz)) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(std::max(var, 0.0f) + eps_);
      cached_mean_[static_cast<size_t>(i * groups_ + g)] = mean;
      cached_inv_std_[static_cast<size_t>(i * groups_ + g)] = inv_std;

      float* dst = out.data() + (i * channels_ + g * cpg) * hw;
      for (int64_t c = 0; c < cpg; ++c) {
        const float gm = gamma_.value[g * cpg + c];
        const float bt = beta_.value[g * cpg + c];
        for (int64_t j = 0; j < hw; ++j)
          dst[c * hw + j] = gm * (src[c * hw + j] - mean) * inv_std + bt;
      }
    }
  }
  return out;
}

// Same statistics and normalisation arithmetic as forward(), with the per-
// group moments kept on the stack instead of in member caches.
void GroupNorm::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0), hw = input.dim(2) * input.dim(3);
  const int64_t cpg = channels_ / groups_;
  const int64_t group_sz = cpg * hw;

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t g = 0; g < groups_; ++g) {
      const float* src = input.data() + (i * channels_ + g * cpg) * hw;
      double sum = 0.0, sum_sq = 0.0;
      for (int64_t j = 0; j < group_sz; ++j) {
        sum += src[j];
        sum_sq += static_cast<double>(src[j]) * src[j];
      }
      const float mean = static_cast<float>(sum / static_cast<double>(group_sz));
      const float var =
          static_cast<float>(sum_sq / static_cast<double>(group_sz)) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(std::max(var, 0.0f) + eps_);

      float* dst = output.data() + (i * channels_ + g * cpg) * hw;
      for (int64_t c = 0; c < cpg; ++c) {
        const float gm = gamma_.value[g * cpg + c];
        const float bt = beta_.value[g * cpg + c];
        for (int64_t j = 0; j < hw; ++j)
          dst[c * hw + j] = gm * (src[c * hw + j] - mean) * inv_std + bt;
      }
    }
  }
}

Tensor GroupNorm::backward(const Tensor& grad_output) {
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), hw = x.dim(2) * x.dim(3);
  const int64_t cpg = channels_ / groups_;
  const int64_t group_sz = cpg * hw;

  Tensor grad_input(x.shape());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t g = 0; g < groups_; ++g) {
      const float mean = cached_mean_[static_cast<size_t>(i * groups_ + g)];
      const float inv_std = cached_inv_std_[static_cast<size_t>(i * groups_ + g)];
      const float* xs = x.data() + (i * channels_ + g * cpg) * hw;
      const float* gs = grad_output.data() + (i * channels_ + g * cpg) * hw;
      float* gx = grad_input.data() + (i * channels_ + g * cpg) * hw;

      // Accumulate per-channel parameter grads and the two group reductions
      // needed for dx: mean(dy_hat) and mean(dy_hat * xhat), where
      // dy_hat = dy * gamma.
      double sum_dyg = 0.0, sum_dyg_xhat = 0.0;
      for (int64_t c = 0; c < cpg; ++c) {
        const float gm = gamma_.value[g * cpg + c];
        double dgamma = 0.0, dbeta = 0.0;
        for (int64_t j = 0; j < hw; ++j) {
          const float xhat = (xs[c * hw + j] - mean) * inv_std;
          const float dy = gs[c * hw + j];
          dgamma += static_cast<double>(dy) * xhat;
          dbeta += dy;
          const float dyg = dy * gm;
          sum_dyg += dyg;
          sum_dyg_xhat += static_cast<double>(dyg) * xhat;
        }
        gamma_.grad[g * cpg + c] += static_cast<float>(dgamma);
        beta_.grad[g * cpg + c] += static_cast<float>(dbeta);
      }
      const float mean_dyg = static_cast<float>(sum_dyg / static_cast<double>(group_sz));
      const float mean_dyg_xhat =
          static_cast<float>(sum_dyg_xhat / static_cast<double>(group_sz));

      for (int64_t c = 0; c < cpg; ++c) {
        const float gm = gamma_.value[g * cpg + c];
        for (int64_t j = 0; j < hw; ++j) {
          const float xhat = (xs[c * hw + j] - mean) * inv_std;
          const float dyg = gs[c * hw + j] * gm;
          gx[c * hw + j] = inv_std * (dyg - mean_dyg - xhat * mean_dyg_xhat);
        }
      }
    }
  }
  return grad_input;
}

}  // namespace sesr::nn
