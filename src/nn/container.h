// Composite modules: sequential chains, residual blocks, channel concat.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace sesr::nn {

/// Runs child modules in order; backward replays them in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::string display_name) : display_name_(std::move(display_name)) {}

  /// Append a child (builder style): seq.add<Conv2d>(opts).
  template <typename M, typename... Args>
  M& add(Args&&... args) {
    auto child = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *child;
    children_.push_back(std::move(child));
    return ref;
  }

  void add_module(ModulePtr child) { children_.push_back(std::move(child)); }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override {
    return display_name_.empty() ? "sequential" : display_name_;
  }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  [[nodiscard]] bool supports_compiled_inference() const override;
  int compile_inference(InferenceBuilder& builder, int input) const override;

  [[nodiscard]] size_t size() const { return children_.size(); }
  [[nodiscard]] Module& child(size_t i) { return *children_[i]; }

 private:
  std::string display_name_;
  std::vector<ModulePtr> children_;
};

/// output = body(x) * scale + shortcut(x); shortcut defaults to identity.
/// EDSR's residual blocks use scale = 0.1 for the full model, 1.0 for -base.
class Residual : public Module {
 public:
  explicit Residual(ModulePtr body, ModulePtr shortcut = nullptr, float scale = 1.0f)
      : body_(std::move(body)), shortcut_(std::move(shortcut)), scale_(scale) {}

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "residual"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  [[nodiscard]] bool supports_compiled_inference() const override;
  int compile_inference(InferenceBuilder& builder, int input) const override;

 private:
  ModulePtr body_;
  ModulePtr shortcut_;  // nullptr = identity
  float scale_;
};

/// Runs each branch on the same input and concatenates outputs along the
/// channel axis (Inception-style).
class Concat : public Module {
 public:
  Concat() = default;

  template <typename M, typename... Args>
  M& add_branch(Args&&... args) {
    auto child = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *child;
    branches_.push_back(std::move(child));
    return ref;
  }

  void add_branch_module(ModulePtr branch) { branches_.push_back(std::move(branch)); }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return "concat"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  [[nodiscard]] bool supports_compiled_inference() const override;
  int compile_inference(InferenceBuilder& builder, int input) const override;

 private:
  std::vector<ModulePtr> branches_;
  std::vector<int64_t> branch_channels_;  // cached by forward for backward split
  Shape cached_input_shape_;
};

}  // namespace sesr::nn
