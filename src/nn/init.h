// Weight initialisation.
#pragma once

#include "nn/module.h"
#include "tensor/rng.h"

namespace sesr::nn {

/// He (Kaiming) normal initialisation for a conv/linear weight tensor:
/// N(0, sqrt(2 / fan_in)). `fan_in` = in_channels * kernel_h * kernel_w for
/// convolutions, in_features for linear layers.
void he_normal_(Tensor& weight, int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform initialisation: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform_(Tensor& weight, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Initialise every parameter of `module` with sensible defaults:
/// He-normal for weights (fan-in inferred from shape), zero for biases.
/// Recognises weight tensors by rank (>= 2) and name.
void init_he_normal(Module& module, Rng& rng);

}  // namespace sesr::nn
