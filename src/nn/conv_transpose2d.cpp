#include "nn/conv_transpose2d.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.h"

namespace sesr::nn {

ConvTranspose2d::ConvTranspose2d(ConvTranspose2dOptions opts)
    : opts_(opts),
      weight_("weight",
              Tensor({opts.in_channels, opts.out_channels, opts.kernel, opts.kernel})),
      bias_("bias", Tensor({opts.bias ? opts.out_channels : 0})) {
  if (opts_.in_channels <= 0 || opts_.out_channels <= 0 || opts_.kernel <= 0 || opts_.stride <= 0)
    throw std::invalid_argument("ConvTranspose2d: non-positive dimension in options");
}

std::string ConvTranspose2d::name() const {
  return "deconv" + std::to_string(opts_.kernel) + "x" + std::to_string(opts_.kernel) + "_" +
         std::to_string(opts_.in_channels) + "_" + std::to_string(opts_.out_channels) + "_s" +
         std::to_string(opts_.stride);
}

std::vector<Parameter*> ConvTranspose2d::parameters() {
  std::vector<Parameter*> params{&weight_};
  if (opts_.bias) params.push_back(&bias_);
  return params;
}

Shape ConvTranspose2d::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4 || input[1] != opts_.in_channels)
    throw std::invalid_argument("ConvTranspose2d::trace: bad input shape " + input.to_string());
  const Shape output{input[0], opts_.out_channels, out_extent(input[2]), out_extent(input[3])};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kConvTranspose2d;
    info.name = name();
    info.input = input;
    info.output = output;
    info.kernel_h = info.kernel_w = opts_.kernel;
    info.stride = opts_.stride;
    info.params = weight_.value.numel() + (opts_.bias ? opts_.out_channels : 0);
    // Gather-form accounting: k*k taps per output element, matching the MAC
    // convention of the paper's Table I (FSRCNN = 5.82B at 299x299 RGB).
    info.macs = output[2] * output[3] * opts_.out_channels * opts_.in_channels *
                opts_.kernel * opts_.kernel;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor ConvTranspose2d::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_ = input;  // backward needs the full input
  Tensor output(out_shape);
  Workspace unused;  // the scatter kernel needs no scratch
  infer_into(input, output, unused);
  return output;
}

// The one scatter kernel, shared by forward() (which adds caching on top)
// and the compiled runtime. The output region is seeded with the bias (or
// zero) before the scatter-accumulation.
void ConvTranspose2d::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel;
  const int64_t out_h = output.dim(2), out_w = output.dim(3);

  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* in_ptr = input.data() + i * c_in * h * w;
      float* out_ptr = output.data() + i * c_out * out_h * out_w;
      if (opts_.bias) {
        for (int64_t oc = 0; oc < c_out; ++oc) {
          const float b = bias_.value[oc];
          float* plane = out_ptr + oc * out_h * out_w;
          for (int64_t j = 0; j < out_h * out_w; ++j) plane[j] = b;
        }
      } else {
        std::fill(out_ptr, out_ptr + c_out * out_h * out_w, 0.0f);
      }
      for (int64_t ic = 0; ic < c_in; ++ic) {
        const float* in_plane = in_ptr + ic * h * w;
        for (int64_t ih = 0; ih < h; ++ih) {
          for (int64_t iw = 0; iw < w; ++iw) {
            const float v = in_plane[ih * w + iw];
            if (v == 0.0f) continue;
            const int64_t oh0 = ih * opts_.stride - opts_.padding;
            const int64_t ow0 = iw * opts_.stride - opts_.padding;
            for (int64_t oc = 0; oc < c_out; ++oc) {
              const float* w_plane = weight_.value.data() + (ic * c_out + oc) * k * k;
              float* out_plane = out_ptr + oc * out_h * out_w;
              for (int64_t kh = 0; kh < k; ++kh) {
                const int64_t oh = oh0 + kh;
                if (oh < 0 || oh >= out_h) continue;
                for (int64_t kw = 0; kw < k; ++kw) {
                  const int64_t ow = ow0 + kw;
                  if (ow < 0 || ow >= out_w) continue;
                  out_plane[oh * out_w + ow] += v * w_plane[kh * k + kw];
                }
              }
            }
          }
        }
      }
    }
  });
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int64_t n = input.dim(0), c_in = opts_.in_channels;
  const int64_t h = input.dim(2), w = input.dim(3);
  const int64_t c_out = opts_.out_channels, k = opts_.kernel;
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);

  Tensor grad_input(input.shape());
  const int threads = num_threads();
  std::vector<Tensor> wgrads(static_cast<size_t>(threads), Tensor(weight_.value.shape()));
  std::vector<Tensor> bgrads(static_cast<size_t>(threads), Tensor({opts_.bias ? c_out : 0}));
  std::atomic<int> next_slot{0};

  parallel_for(0, n, [&](int64_t lo, int64_t hi) {
    const int slot = next_slot.fetch_add(1);
    Tensor& wgrad = wgrads[static_cast<size_t>(slot)];
    Tensor& bgrad = bgrads[static_cast<size_t>(slot)];
    for (int64_t i = lo; i < hi; ++i) {
      const float* in_ptr = input.data() + i * c_in * h * w;
      const float* g_ptr = grad_output.data() + i * c_out * out_h * out_w;
      float* gin_ptr = grad_input.data() + i * c_in * h * w;
      if (opts_.bias) {
        for (int64_t oc = 0; oc < c_out; ++oc) {
          const float* g_plane = g_ptr + oc * out_h * out_w;
          float acc = 0.0f;
          for (int64_t j = 0; j < out_h * out_w; ++j) acc += g_plane[j];
          bgrad[oc] += acc;
        }
      }
      for (int64_t ic = 0; ic < c_in; ++ic) {
        const float* in_plane = in_ptr + ic * h * w;
        float* gin_plane = gin_ptr + ic * h * w;
        for (int64_t ih = 0; ih < h; ++ih) {
          for (int64_t iw = 0; iw < w; ++iw) {
            const float v = in_plane[ih * w + iw];
            const int64_t oh0 = ih * opts_.stride - opts_.padding;
            const int64_t ow0 = iw * opts_.stride - opts_.padding;
            float gin_acc = 0.0f;
            for (int64_t oc = 0; oc < c_out; ++oc) {
              const float* g_plane = g_ptr + oc * out_h * out_w;
              const float* w_plane = weight_.value.data() + (ic * c_out + oc) * k * k;
              float* wg_plane = wgrad.data() + (ic * c_out + oc) * k * k;
              for (int64_t kh = 0; kh < k; ++kh) {
                const int64_t oh = oh0 + kh;
                if (oh < 0 || oh >= out_h) continue;
                for (int64_t kw = 0; kw < k; ++kw) {
                  const int64_t ow = ow0 + kw;
                  if (ow < 0 || ow >= out_w) continue;
                  const float g = g_plane[oh * out_w + ow];
                  gin_acc += g * w_plane[kh * k + kw];
                  wg_plane[kh * k + kw] += g * v;
                }
              }
            }
            gin_plane[ih * w + iw] = gin_acc;
          }
        }
      }
    }
  });

  const int used = next_slot.load();
  for (int t = 0; t < used; ++t) {
    weight_.grad.add_(wgrads[static_cast<size_t>(t)]);
    if (opts_.bias) bias_.grad.add_(bgrads[static_cast<size_t>(t)]);
  }
  return grad_input;
}

}  // namespace sesr::nn
