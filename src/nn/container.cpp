#include "nn/container.h"

#include <algorithm>
#include <stdexcept>

#include "nn/inference.h"

namespace sesr::nn {

// ---- Sequential ---------------------------------------------------------------

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& child : children_)
    for (Parameter* p : child->parameters()) params.push_back(p);
  return params;
}

Shape Sequential::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  Shape shape = input;
  for (const auto& child : children_) shape = child->trace(shape, out);
  return shape;
}

bool Sequential::supports_compiled_inference() const {
  return std::all_of(children_.begin(), children_.end(),
                     [](const ModulePtr& c) { return c->supports_compiled_inference(); });
}

int Sequential::compile_inference(InferenceBuilder& builder, int input) const {
  int buffer = input;
  for (const auto& child : children_) buffer = child->compile_inference(builder, buffer);
  return buffer;
}

// ---- Residual -----------------------------------------------------------------

Tensor Residual::forward(const Tensor& input) {
  Tensor out = body_->forward(input);
  if (scale_ != 1.0f) out.mul_scalar(scale_);
  if (shortcut_) {
    out.add_(shortcut_->forward(input));
  } else {
    out.add_(input);
  }
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor body_grad = grad_output;
  if (scale_ != 1.0f) body_grad.mul_scalar(scale_);
  Tensor grad_input = body_->backward(body_grad);
  if (shortcut_) {
    grad_input.add_(shortcut_->backward(grad_output));
  } else {
    grad_input.add_(grad_output);
  }
  return grad_input;
}

std::vector<Parameter*> Residual::parameters() {
  std::vector<Parameter*> params = body_->parameters();
  if (shortcut_)
    for (Parameter* p : shortcut_->parameters()) params.push_back(p);
  return params;
}

bool Residual::supports_compiled_inference() const {
  return body_->supports_compiled_inference() &&
         (!shortcut_ || shortcut_->supports_compiled_inference());
}

int Residual::compile_inference(InferenceBuilder& builder, int input) const {
  builder.pin(input);  // re-read by the shortcut path after the body compiles
  const int body = body_->compile_inference(builder, input);
  if (scale_ != 1.0f) builder.emit_scale(body, scale_);
  const int shortcut = shortcut_ ? shortcut_->compile_inference(builder, input) : input;
  builder.emit_add(body, shortcut);
  return body;
}

Shape Residual::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  const Shape body_out = body_->trace(input, out);
  const Shape short_out = shortcut_ ? shortcut_->trace(input, out) : input;
  if (body_out != short_out)
    throw std::invalid_argument("Residual::trace: body " + body_out.to_string() +
                                " vs shortcut " + short_out.to_string());
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kElementwise;
    info.name = "residual_add";
    info.input = body_out;
    info.output = body_out;
    out->push_back(std::move(info));
  }
  return body_out;
}

// ---- Concat -------------------------------------------------------------------

Tensor Concat::forward(const Tensor& input) {
  if (branches_.empty()) throw std::logic_error("Concat: no branches");
  cached_input_shape_ = input.shape();
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  branch_channels_.clear();
  int64_t total_c = 0;
  for (auto& b : branches_) {
    outs.push_back(b->forward(input));
    branch_channels_.push_back(outs.back().dim(1));
    total_c += outs.back().dim(1);
  }
  const int64_t n = outs[0].dim(0), h = outs[0].dim(2), w = outs[0].dim(3);
  Tensor output({n, total_c, h, w});
  for (int64_t i = 0; i < n; ++i) {
    int64_t c_off = 0;
    for (const Tensor& o : outs) {
      const int64_t c = o.dim(1);
      std::copy(o.data() + i * c * h * w, o.data() + (i + 1) * c * h * w,
                output.data() + (i * total_c + c_off) * h * w);
      c_off += c;
    }
  }
  return output;
}

Tensor Concat::backward(const Tensor& grad_output) {
  const int64_t n = grad_output.dim(0), h = grad_output.dim(2), w = grad_output.dim(3);
  const int64_t total_c = grad_output.dim(1);
  Tensor grad_input(cached_input_shape_);
  int64_t c_off = 0;
  for (size_t bi = 0; bi < branches_.size(); ++bi) {
    const int64_t c = branch_channels_[bi];
    Tensor g({n, c, h, w});
    for (int64_t i = 0; i < n; ++i)
      std::copy(grad_output.data() + (i * total_c + c_off) * h * w,
                grad_output.data() + (i * total_c + c_off + c) * h * w,
                g.data() + i * c * h * w);
    grad_input.add_(branches_[bi]->backward(g));
    c_off += c;
  }
  return grad_input;
}

std::vector<Parameter*> Concat::parameters() {
  std::vector<Parameter*> params;
  for (auto& b : branches_)
    for (Parameter* p : b->parameters()) params.push_back(p);
  return params;
}

bool Concat::supports_compiled_inference() const {
  return !branches_.empty() &&
         std::all_of(branches_.begin(), branches_.end(),
                     [](const ModulePtr& b) { return b->supports_compiled_inference(); });
}

int Concat::compile_inference(InferenceBuilder& builder, int input) const {
  if (branches_.empty()) throw std::logic_error("Concat::compile_inference: no branches");
  builder.pin(input);  // every branch reads the same input
  std::vector<int> outs;
  outs.reserve(branches_.size());
  for (const auto& branch : branches_) outs.push_back(branch->compile_inference(builder, input));
  return builder.emit_concat(outs);
}

Shape Concat::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (branches_.empty()) throw std::logic_error("Concat::trace: no branches");
  int64_t total_c = 0;
  Shape first;
  for (const auto& b : branches_) {
    const Shape s = b->trace(input, out);
    if (total_c == 0) first = s;
    else if (s[0] != first[0] || s[2] != first[2] || s[3] != first[3])
      throw std::invalid_argument("Concat::trace: branch spatial mismatch");
    total_c += s[1];
  }
  const Shape output{first[0], total_c, first[2], first[3]};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kConcat;
    info.name = "concat";
    info.input = input;
    info.output = output;
    out->push_back(std::move(info));
  }
  return output;
}

}  // namespace sesr::nn
