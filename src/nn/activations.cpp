#include "nn/activations.h"

#include <algorithm>
#include <stdexcept>

#include "nn/fused_activation.h"
#include "nn/inference.h"

namespace sesr::nn {
namespace {

LayerInfo activation_info(const std::string& name, const Shape& shape) {
  LayerInfo info;
  info.kind = LayerKind::kActivation;
  info.name = name;
  info.input = shape;
  info.output = shape;
  return info;
}

}  // namespace

// ---- ReLU -------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (float& v : out.flat())
    if (v < 0.0f) v = 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const auto in = cached_input_.flat();
  auto g = grad.flat();
  for (size_t i = 0; i < g.size(); ++i)
    if (in[i] <= 0.0f) g[i] = 0.0f;
  return grad;
}

Shape ReLU::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (out) out->push_back(activation_info(name(), input));
  return input;
}

void ReLU::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const auto in = input.flat();
  auto out = output.flat();
  for (size_t i = 0; i < in.size(); ++i) out[i] = in[i] < 0.0f ? 0.0f : in[i];
}

int ReLU::compile_inference(InferenceBuilder& builder, int input) const {
  return builder.emit_pointwise(*this, input);
}

// ---- ReLU6 ------------------------------------------------------------------

Tensor ReLU6::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  out.clamp_(0.0f, 6.0f);
  return out;
}

Tensor ReLU6::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const auto in = cached_input_.flat();
  auto g = grad.flat();
  for (size_t i = 0; i < g.size(); ++i)
    if (in[i] <= 0.0f || in[i] >= 6.0f) g[i] = 0.0f;
  return grad;
}

Shape ReLU6::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (out) out->push_back(activation_info(name(), input));
  return input;
}

void ReLU6::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const auto in = input.flat();
  auto out = output.flat();
  for (size_t i = 0; i < in.size(); ++i) out[i] = std::clamp(in[i], 0.0f, 6.0f);
}

int ReLU6::compile_inference(InferenceBuilder& builder, int input) const {
  return builder.emit_pointwise(*this, input);
}

// ---- LeakyReLU --------------------------------------------------------------

Tensor LeakyReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (float& v : out.flat())
    if (v < 0.0f) v *= slope_;
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const auto in = cached_input_.flat();
  auto g = grad.flat();
  for (size_t i = 0; i < g.size(); ++i)
    if (in[i] < 0.0f) g[i] *= slope_;
  return grad;
}

Shape LeakyReLU::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (out) out->push_back(activation_info(name(), input));
  return input;
}

void LeakyReLU::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const auto in = input.flat();
  auto out = output.flat();
  for (size_t i = 0; i < in.size(); ++i) out[i] = in[i] < 0.0f ? in[i] * slope_ : in[i];
}

int LeakyReLU::compile_inference(InferenceBuilder& builder, int input) const {
  return builder.emit_pointwise(*this, input);
}

// ---- PReLU ------------------------------------------------------------------

PReLU::PReLU(int64_t channels, float init_slope)
    : channels_(channels), slope_("prelu_slope", Tensor({channels}, init_slope)) {
  if (channels <= 0) throw std::invalid_argument("PReLU: channels must be positive");
}

Tensor PReLU::forward(const Tensor& input) {
  if (input.ndim() != 4 || input.dim(1) != channels_)
    throw std::invalid_argument("PReLU::forward: expected NCHW input with " +
                                std::to_string(channels_) + " channels, got " +
                                input.shape().to_string());
  cached_input_ = input;
  Tensor out = input;
  const int64_t n = input.dim(0), hw = input.dim(2) * input.dim(3);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float a = slope_.value[c];
      float* plane = out.data() + (i * channels_ + c) * hw;
      for (int64_t j = 0; j < hw; ++j)
        if (plane[j] < 0.0f) plane[j] *= a;
    }
  }
  return out;
}

Tensor PReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const int64_t n = cached_input_.dim(0), hw = cached_input_.dim(2) * cached_input_.dim(3);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float a = slope_.value[c];
      const float* in_plane = cached_input_.data() + (i * channels_ + c) * hw;
      float* g_plane = grad.data() + (i * channels_ + c) * hw;
      float slope_grad = 0.0f;
      for (int64_t j = 0; j < hw; ++j) {
        if (in_plane[j] < 0.0f) {
          slope_grad += g_plane[j] * in_plane[j];
          g_plane[j] *= a;
        }
      }
      slope_.grad[c] += slope_grad;
    }
  }
  return grad;
}

Shape PReLU::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (out) {
    LayerInfo info = activation_info(name(), input);
    info.params = channels_;
    out->push_back(std::move(info));
  }
  return input;
}

void PReLU::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0), hw = input.dim(2) * input.dim(3);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float a = slope_.value[c];
      const float* in_plane = input.data() + (i * channels_ + c) * hw;
      float* out_plane = output.data() + (i * channels_ + c) * hw;
      for (int64_t j = 0; j < hw; ++j)
        out_plane[j] = in_plane[j] < 0.0f ? in_plane[j] * a : in_plane[j];
    }
  }
}

int PReLU::compile_inference(InferenceBuilder& builder, int input) const {
  return builder.emit_pointwise(*this, input);
}

// ---- fusion classification --------------------------------------------------

FusedActivation FusedActivation::from(const Module& layer) {
  FusedActivation act;
  if (dynamic_cast<const ReLU*>(&layer) != nullptr) {
    act.kind = Kind::kReLU;
  } else if (dynamic_cast<const ReLU6*>(&layer) != nullptr) {
    act.kind = Kind::kReLU6;
  } else if (const auto* leaky = dynamic_cast<const LeakyReLU*>(&layer)) {
    act.kind = Kind::kLeakyReLU;
    act.slope = leaky->slope();
  } else if (const auto* prelu = dynamic_cast<const PReLU*>(&layer)) {
    act.kind = Kind::kPReLU;
    // parameters() is logically const (see Module::num_params).
    act.channel_slopes =
        const_cast<PReLU*>(prelu)->parameters().front()->value.data();
  }
  return act;
}

}  // namespace sesr::nn
