#include "nn/optimizer.h"

#include <cmath>

namespace sesr::nn {

SGD::SGD(std::vector<Parameter*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& vel = velocity_[i];
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float g = p.grad[j] + weight_decay_ * p.value[j];
      vel[j] = momentum_ * vel[j] + g;
      p.value[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float g = p.grad[j] + weight_decay_ * p.value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p.value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace sesr::nn
