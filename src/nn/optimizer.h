// Gradient-descent optimisers.
#pragma once

#include <vector>

#include "nn/module.h"

namespace sesr::nn {

/// Interface: step() applies accumulated gradients to the registered
/// parameters; callers zero gradients between steps (Module::zero_grad).
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;

  void set_learning_rate(float lr) { lr_ = lr; }
  [[nodiscard]] float learning_rate() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 1e-3f;
};

/// Stochastic gradient descent with classical momentum.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) — the optimiser used to train all SR networks and
/// classifiers in the benches.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace sesr::nn
