// Umbrella header for the neural-network substrate.
#pragma once

#include "nn/activations.h"
#include "nn/container.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/gradcheck.h"
#include "nn/groupnorm.h"
#include "nn/inference.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/pixel_ops.h"
#include "nn/pooling.h"
#include "nn/quantize.h"
