#include "nn/module.h"

#include <stdexcept>

#include "nn/inference.h"
#include "nn/init.h"

namespace sesr::nn {

void Module::init_weights(Rng& rng) { init_he_normal(*this, rng); }

void Module::infer_into(const Tensor&, Tensor&, Workspace&) const {
  throw std::logic_error(name() + ": infer_into not implemented");
}

int Module::compile_inference(InferenceBuilder& builder, int input) const {
  return builder.emit_layer(*this, input);
}

void Module::load_parameters_from(Module& other) {
  auto dst = parameters();
  auto src = other.parameters();
  if (dst.size() != src.size())
    throw std::invalid_argument("load_parameters_from: parameter count mismatch (" +
                                std::to_string(dst.size()) + " vs " + std::to_string(src.size()) + ")");
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->value.shape() != src[i]->value.shape())
      throw std::invalid_argument("load_parameters_from: shape mismatch at parameter " +
                                  dst[i]->name);
    dst[i]->value = src[i]->value;
  }
}

std::vector<Tensor> Module::parameter_values() {
  std::vector<Tensor> values;
  for (Parameter* p : parameters()) values.push_back(p->value);
  return values;
}

void Module::set_parameter_values(const std::vector<Tensor>& values) {
  auto params = parameters();
  if (params.size() != values.size())
    throw std::invalid_argument("set_parameter_values: count mismatch");
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i]->value.shape() != values[i].shape())
      throw std::invalid_argument("set_parameter_values: shape mismatch at " + params[i]->name);
    params[i]->value = values[i];
  }
}

}  // namespace sesr::nn
