// Compilation interface for the inference runtime.
//
// runtime::Program (src/runtime) compiles a Module tree into a flat
// list of ops over typed, arena-planned activation buffers. Modules describe their
// inference dataflow to an InferenceBuilder: primitives emit themselves as a
// single layer step (executed through Module::infer_into), composites recurse
// into their children and stitch the results with elementwise steps. Keeping
// the builder interface here lets every layer stay ignorant of the runtime
// subsystem while the runtime stays ignorant of concrete layer types.
//
// Buffers are identified by dense integer ids; id 0 is always the plan input
// (read-only — it aliases the caller's tensor at execution time). emit_layer
// / emit_pointwise / emit_concat mint new ids; emit_add / emit_scale mutate
// an existing buffer in place, mirroring the Tensor::add_ / mul_scalar calls
// the training-path forward() implementations make.
//
// In-place execution and pinning: the builder emits pointwise ops into fresh
// buffers and merely marks them alias-safe — whether an op runs in place is
// decided by the runtime's liveness-based in-place election pass, which sees
// the whole program instead of the builder's single-pass view. pin(buffer)
// remains as a write guard: a composite that reads a buffer again *after*
// compiling intermediate children (residual shortcuts, concat fan-out, long
// skips) must pin it first, and emit_add / emit_scale refuse to mutate a
// pinned buffer (or the read-only plan input).
#pragma once

#include <vector>

#include "tensor/shape.h"

namespace sesr::nn {

class Module;

class InferenceBuilder {
 public:
  virtual ~InferenceBuilder() = default;

  /// Append "run `layer` reading buffer `input`"; returns the fresh output
  /// buffer id. `layer` must outlive the compiled plan and implement
  /// infer_into. The output shape comes from layer.trace().
  virtual int emit_layer(const Module& layer, int input) = 0;

  /// Like emit_layer for a shape-preserving pointwise layer whose infer_into
  /// tolerates output.data() == input.data(); the runtime's in-place election
  /// pass may later alias the output onto `input` when liveness allows.
  virtual int emit_pointwise(const Module& layer, int input) = 0;

  /// buffers[dst] += buffers[src] (Tensor::add_ semantics; same shapes).
  virtual void emit_add(int dst, int src) = 0;

  /// buffers[dst] *= alpha (Tensor::mul_scalar semantics).
  virtual void emit_scale(int dst, float alpha) = 0;

  /// Channel-axis concat of `srcs` (all [N, C_i, H, W]) into a fresh buffer.
  virtual int emit_concat(const std::vector<int>& srcs) = 0;

  /// Forbid later steps from overwriting `buffer` (it will be read again).
  virtual void pin(int buffer) = 0;

  /// Shape of an existing buffer.
  [[nodiscard]] virtual const Shape& buffer_shape(int buffer) const = 0;
};

}  // namespace sesr::nn
