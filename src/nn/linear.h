// Fully connected layer.
//
// Classifier heads: consumes the [N, C] output of GlobalAvgPool and produces
// [N, num_classes] logits. Weight layout: [out_features, in_features].
#pragma once

#include "nn/module.h"

namespace sesr::nn {

class Linear final : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }

 private:
  int64_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace sesr::nn
