// Loss functions.
//
// Each loss returns the scalar loss value and the gradient with respect to
// the prediction, ready to feed into Module::backward. Losses are mean-
// reduced over all elements (MAE/MSE) or over the batch (cross-entropy),
// matching the conventions of the SR literature and of classification
// training respectively.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sesr::nn {

struct LossResult {
  float value = 0.0f;
  Tensor grad;  ///< d(loss)/d(prediction), same shape as the prediction
};

/// Mean absolute error — the EDSR/SESR training loss.
LossResult mae_loss(const Tensor& prediction, const Tensor& target);

/// Mean squared error — the FSRCNN training loss.
LossResult mse_loss(const Tensor& prediction, const Tensor& target);

/// Row-wise softmax of logits [N, K].
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy of logits [N, K] against integer labels (size N).
/// Computed via a numerically stable log-sum-exp.
LossResult cross_entropy_loss(const Tensor& logits, const std::vector<int64_t>& labels);

/// Top-1 predictions from logits [N, K].
std::vector<int64_t> argmax_rows(const Tensor& logits);

}  // namespace sesr::nn
