#include "nn/gradcheck.h"

#include <cmath>

namespace sesr::nn {
namespace {

// Scalar objective: sum(module(x) * r). Its input gradient is backward(r).
float objective(Module& module, const Tensor& input, const Tensor& r) {
  Tensor out = module.forward(input);
  double acc = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) acc += static_cast<double>(out[i]) * r[i];
  return static_cast<float>(acc);
}

float relative_error(float analytic, float numeric) {
  const float denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4f});
  return std::abs(analytic - numeric) / denom;
}

GradCheckResult compare_sampled(Tensor& target, const Tensor& analytic_grad,
                                const std::function<float()>& eval,
                                const GradCheckOptions& opts, Rng& rng,
                                const std::string& label) {
  GradCheckResult result{true, 0.0f, ""};
  const int64_t n = target.numel();
  const int coords = static_cast<int>(std::min<int64_t>(opts.max_coords, n));
  double diff_sq = 0.0, ref_sq = 0.0;
  for (int s = 0; s < coords; ++s) {
    const int64_t idx = (n <= opts.max_coords) ? s : rng.randint(0, n - 1);
    const float saved = target[idx];
    target[idx] = saved + opts.epsilon;
    const float plus = eval();
    target[idx] = saved - opts.epsilon;
    const float minus = eval();
    target[idx] = saved;
    const float numeric = (plus - minus) / (2.0f * opts.epsilon);
    const float analytic = analytic_grad[idx];
    diff_sq += static_cast<double>(analytic - numeric) * (analytic - numeric);
    ref_sq += std::max(static_cast<double>(analytic) * analytic,
                       static_cast<double>(numeric) * numeric);
    const float err = relative_error(analytic, numeric);
    if (err > result.max_rel_error) {
      result.max_rel_error = err;
      result.detail = label + "[" + std::to_string(idx) + "]: analytic " +
                      std::to_string(analytic) + " vs numeric " + std::to_string(numeric);
    }
  }
  if (opts.aggregate_l2) {
    result.max_rel_error =
        static_cast<float>(std::sqrt(diff_sq) / std::max(std::sqrt(ref_sq), 1e-8));
    result.detail = label + " (aggregate L2): " + result.detail;
  }
  result.passed = result.max_rel_error <= opts.tolerance;
  return result;
}

}  // namespace

GradCheckResult check_input_gradient(Module& module, const Tensor& input,
                                     const GradCheckOptions& opts) {
  Rng rng(opts.seed);
  Tensor x = input;
  const Tensor probe_out = module.forward(x);
  Tensor r = Tensor::randn(probe_out.shape(), rng);

  module.zero_grad();
  module.forward(x);  // refresh cached state for backward
  const Tensor analytic = module.backward(r);

  return compare_sampled(
      x, analytic, [&] { return objective(module, x, r); }, opts, rng, "input");
}

GradCheckResult check_input_gradient_directional(Module& module, const Tensor& input,
                                                 const GradCheckOptions& opts,
                                                 int num_directions) {
  Rng rng(opts.seed);
  Tensor x = input;
  const Tensor probe_out = module.forward(x);
  Tensor r = Tensor::randn(probe_out.shape(), rng);

  module.zero_grad();
  module.forward(x);
  const Tensor analytic = module.backward(r);

  GradCheckResult result{true, 0.0f, ""};
  for (int k = 0; k < num_directions; ++k) {
    // Unnormalised N(0,1) direction: keeps the per-coordinate step at
    // epsilon-scale so the objective difference stays well above float32
    // cancellation noise even for deep networks.
    Tensor d = Tensor::randn(x.shape(), rng);

    double dot = 0.0;
    for (int64_t i = 0; i < x.numel(); ++i)
      dot += static_cast<double>(analytic[i]) * d[i];

    Tensor x_plus = x, x_minus = x;
    x_plus.axpy_(opts.epsilon, d);
    x_minus.axpy_(-opts.epsilon, d);
    const float numeric =
        (objective(module, x_plus, r) - objective(module, x_minus, r)) / (2.0f * opts.epsilon);

    const float err = relative_error(static_cast<float>(dot), numeric);
    if (err > result.max_rel_error) {
      result.max_rel_error = err;
      result.detail = "direction " + std::to_string(k) + ": analytic " + std::to_string(dot) +
                      " vs numeric " + std::to_string(numeric);
    }
  }
  result.passed = result.max_rel_error <= opts.tolerance;
  return result;
}

void bias_away_from_zero_(Tensor& t, float margin) {
  for (float& v : t.flat()) {
    if (std::abs(v) < margin) v = v >= 0.0f ? margin : -margin;
  }
}

GradCheckResult check_parameter_gradients(Module& module, const Tensor& input,
                                          const GradCheckOptions& opts) {
  Rng rng(opts.seed);
  const Tensor probe_out = module.forward(input);
  Tensor r = Tensor::randn(probe_out.shape(), rng);

  module.zero_grad();
  module.forward(input);
  module.backward(r);

  GradCheckResult worst{true, 0.0f, ""};
  for (Parameter* p : module.parameters()) {
    GradCheckResult res = compare_sampled(
        p->value, p->grad, [&] { return objective(module, input, r); }, opts, rng, p->name);
    if (res.max_rel_error > worst.max_rel_error) worst = res;
  }
  worst.passed = worst.max_rel_error <= opts.tolerance;
  return worst;
}

}  // namespace sesr::nn
