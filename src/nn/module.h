// Layer abstraction for the neural-network substrate.
//
// Every network component (convolutions, activations, composite blocks, full
// models) implements Module: a forward pass, a backward pass that produces
// gradients with respect to both parameters and the input, and a structural
// trace used by the hardware cost model (src/hw) for MAC/parameter/latency
// accounting.
//
// Gradient contract: backward(grad_out) must be called after forward(x) with
// a grad_out shaped like forward's output, and consumes state cached by that
// forward call. Parameter gradients *accumulate* into Parameter::grad; call
// zero_grad() between optimisation steps. Returning the input gradient makes
// gradient-based adversarial attacks (src/attacks) fall out of the same API.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sesr::nn {

/// A learnable tensor and its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)), value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Structural classification of a layer, consumed by the hardware cost model.
enum class LayerKind {
  kConv2d,
  kConvTranspose2d,
  kDepthwiseConv2d,
  kLinear,
  kActivation,
  kElementwise,   // residual adds, scales
  kPool,
  kGlobalPool,
  kDepthToSpace,
  kConcat,
  kIdentity,
};

/// One record of a model's structural trace: enough geometry for the
/// analytic cost model to price the layer on the Ethos-U55.
struct LayerInfo {
  LayerKind kind = LayerKind::kIdentity;
  std::string name;
  Shape input;       ///< NCHW input shape (batch dimension included)
  Shape output;      ///< NCHW output shape
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t params = 0;  ///< learnable parameter count
  int64_t macs = 0;    ///< multiply-accumulates per *single* input sample
};

/// Base class for all layers and models.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the layer output; caches whatever backward() needs.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagate `grad_output` (shaped like the last forward's output) back:
  /// accumulates into parameter grads and returns the input gradient.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All learnable parameters, including those of sub-modules.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Short human-readable identifier (e.g. "conv3x3_16_16").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Shape-propagate a (batched NCHW) input through this module, appending a
  /// LayerInfo per primitive layer when `out` is non-null. Returns the output
  /// shape. Must agree with forward()'s actual shapes.
  virtual Shape trace(const Shape& input, std::vector<LayerInfo>* out) const = 0;

  /// Zero the gradients of every parameter.
  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  /// Total learnable parameter count.
  [[nodiscard]] int64_t num_params() {
    int64_t n = 0;
    for (Parameter* p : parameters()) n += p->value.numel();
    return n;
  }

  /// Convenience: full structural trace for a given input shape.
  [[nodiscard]] std::vector<LayerInfo> layers(const Shape& input) const {
    std::vector<LayerInfo> infos;
    trace(input, &infos);
    return infos;
  }

  /// Initialise all parameters for training. The default is He-normal
  /// weights with zero biases; models with architecture-specific schemes
  /// (e.g. SESR's residual-friendly scaling) override this, and the trainers
  /// call it so those schemes are honoured.
  virtual void init_weights(Rng& rng);

  /// Copy all parameter values from `other` (shapes must match pairwise).
  void load_parameters_from(Module& other);

  /// Flatten parameter values for checkpointing (pairs with set_parameter_values).
  [[nodiscard]] std::vector<Tensor> parameter_values();
  void set_parameter_values(const std::vector<Tensor>& values);

 protected:
  Module() = default;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace sesr::nn
