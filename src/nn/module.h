// Layer abstraction for the neural-network substrate.
//
// Every network component (convolutions, activations, composite blocks, full
// models) implements Module: a forward pass, a backward pass that produces
// gradients with respect to both parameters and the input, and a structural
// trace used by the hardware cost model (src/hw) for MAC/parameter/latency
// accounting.
//
// Gradient contract: backward(grad_out) must be called after forward(x) with
// a grad_out shaped like forward's output, and consumes state cached by that
// forward call. Parameter gradients *accumulate* into Parameter::grad; call
// zero_grad() between optimisation steps. Returning the input gradient makes
// gradient-based adversarial attacks (src/attacks) fall out of the same API.
//
// Inference contract: infer_into(in, out, ws) is the serving-path sibling of
// forward(): it writes forward's result (bit-identically) into a caller-owned
// output tensor, takes scratch from a Workspace instead of allocating, and
// caches nothing — so it is const and safe to run concurrently on the same
// layer from multiple runtime::Sessions. compile_inference() flattens a
// module tree into the op list runtime::Program executes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace sesr::nn {

class InferenceBuilder;

/// A learnable tensor and its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)), value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Structural classification of a layer, consumed by the hardware cost model.
enum class LayerKind {
  kConv2d,
  kConvTranspose2d,
  kDepthwiseConv2d,
  kLinear,
  kActivation,
  kElementwise,   // residual adds, scales
  kPool,
  kGlobalPool,
  kDepthToSpace,
  kConcat,
  kIdentity,
};

/// One record of a model's structural trace: enough geometry for the
/// analytic cost model to price the layer on the Ethos-U55.
struct LayerInfo {
  LayerKind kind = LayerKind::kIdentity;
  std::string name;
  Shape input;       ///< NCHW input shape (batch dimension included)
  Shape output;      ///< NCHW output shape
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t params = 0;  ///< learnable parameter count
  int64_t macs = 0;    ///< multiply-accumulates per *single* input sample
};

/// Base class for all layers and models.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the layer output; caches whatever backward() needs.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagate `grad_output` (shaped like the last forward's output) back:
  /// accumulates into parameter grads and returns the input gradient.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All learnable parameters, including those of sub-modules.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Short human-readable identifier (e.g. "conv3x3_16_16").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Shape-propagate a (batched NCHW) input through this module, appending a
  /// LayerInfo per primitive layer when `out` is non-null. Returns the output
  /// shape. Must agree with forward()'s actual shapes.
  virtual Shape trace(const Shape& input, std::vector<LayerInfo>* out) const = 0;

  /// Compute forward(input) into `output` (pre-shaped to trace()'s result)
  /// without allocating or caching backward state; `workspace` supplies
  /// scratch. Must be bit-identical to forward() and safe to call
  /// concurrently with distinct (output, workspace). Layers participating in
  /// the compiled runtime override this; the default throws.
  virtual void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const;

  /// Whether compile_inference() produces a runnable program for this module
  /// (i.e. every primitive it flattens to implements infer_into). Queried by
  /// runtime::Program::compile before building.
  [[nodiscard]] virtual bool supports_compiled_inference() const { return false; }

  /// Flatten this module into `builder`'s step list, reading buffer `input`;
  /// returns the output buffer id. The default emits the module as one
  /// opaque layer step (executed via infer_into); composites override to
  /// recurse into children. See nn/inference.h for the builder contract.
  virtual int compile_inference(InferenceBuilder& builder, int input) const;

  /// Zero the gradients of every parameter.
  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  /// Total learnable parameter count. parameters() is logically const (pure
  /// enumeration; the mutable pointers it returns exist for the optimisers),
  /// so this query is const without duplicating every override.
  [[nodiscard]] int64_t num_params() const {
    int64_t n = 0;
    for (const Parameter* p : const_cast<Module*>(this)->parameters()) n += p->value.numel();
    return n;
  }

  /// Convenience: full structural trace for a given input shape.
  [[nodiscard]] std::vector<LayerInfo> layers(const Shape& input) const {
    std::vector<LayerInfo> infos;
    trace(input, &infos);
    return infos;
  }

  /// Initialise all parameters for training. The default is He-normal
  /// weights with zero biases; models with architecture-specific schemes
  /// (e.g. SESR's residual-friendly scaling) override this, and the trainers
  /// call it so those schemes are honoured.
  virtual void init_weights(Rng& rng);

  /// Copy all parameter values from `other` (shapes must match pairwise).
  void load_parameters_from(Module& other);

  /// Flatten parameter values for checkpointing (pairs with set_parameter_values).
  [[nodiscard]] std::vector<Tensor> parameter_values();
  void set_parameter_values(const std::vector<Tensor>& values);

 protected:
  Module() = default;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace sesr::nn
