#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace sesr::nn {
namespace {

int64_t pool_out_extent(int64_t in, int64_t kernel, int64_t stride, int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

LayerInfo pool_info(const std::string& name, const Shape& in, const Shape& out,
                    int64_t kernel, int64_t stride) {
  LayerInfo info;
  info.kind = LayerKind::kPool;
  info.name = name;
  info.input = in;
  info.output = out;
  info.kernel_h = info.kernel_w = kernel;
  info.stride = stride;
  return info;
}

}  // namespace

// ---- MaxPool2d ---------------------------------------------------------------

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride, int64_t padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  if (kernel <= 0 || stride <= 0 || padding < 0)
    throw std::invalid_argument("MaxPool2d: invalid geometry");
}

std::string MaxPool2d::name() const {
  return "maxpool" + std::to_string(kernel_) + "_s" + std::to_string(stride_);
}

Shape MaxPool2d::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4)
    throw std::invalid_argument("MaxPool2d::trace: expected NCHW, got " + input.to_string());
  const Shape output{input[0], input[1],
                     pool_out_extent(input[2], kernel_, stride_, padding_),
                     pool_out_extent(input[3], kernel_, stride_, padding_)};
  if (out) out->push_back(pool_info(name(), input, output, kernel_, stride_));
  return output;
}

Tensor MaxPool2d::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_shape_ = input.shape();
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t out_h = out_shape[2], out_w = out_shape[3];

  Tensor output(out_shape);
  argmax_.assign(static_cast<size_t>(output.numel()), -1);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      for (int64_t oh = 0; oh < out_h; ++oh)
        for (int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t kh = 0; kh < kernel_; ++kh) {
            const int64_t ih = oh * stride_ - padding_ + kh;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < kernel_; ++kw) {
              const int64_t iw = ow * stride_ - padding_ + kw;
              if (iw < 0 || iw >= w) continue;
              const float v = plane[ih * w + iw];
              if (v > best) {
                best = v;
                best_idx = (i * c + ch) * h * w + ih * w + iw;
              }
            }
          }
          output[out_idx] = best_idx >= 0 ? best : 0.0f;
          argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
    }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_input_shape_);
  for (int64_t j = 0; j < grad_output.numel(); ++j) {
    const int64_t src = argmax_[static_cast<size_t>(j)];
    if (src >= 0) grad_input[src] += grad_output[j];
  }
  return grad_input;
}

// ---- AvgPool2d ---------------------------------------------------------------

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride, int64_t padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  if (kernel <= 0 || stride <= 0 || padding < 0)
    throw std::invalid_argument("AvgPool2d: invalid geometry");
}

std::string AvgPool2d::name() const {
  return "avgpool" + std::to_string(kernel_) + "_s" + std::to_string(stride_);
}

Shape AvgPool2d::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4)
    throw std::invalid_argument("AvgPool2d::trace: expected NCHW, got " + input.to_string());
  const Shape output{input[0], input[1],
                     pool_out_extent(input[2], kernel_, stride_, padding_),
                     pool_out_extent(input[3], kernel_, stride_, padding_)};
  if (out) out->push_back(pool_info(name(), input, output, kernel_, stride_));
  return output;
}

Tensor AvgPool2d::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_shape_ = input.shape();
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t out_h = out_shape[2], out_w = out_shape[3];
  const float inv_area = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor output(out_shape);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      for (int64_t oh = 0; oh < out_h; ++oh)
        for (int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float acc = 0.0f;
          for (int64_t kh = 0; kh < kernel_; ++kh) {
            const int64_t ih = oh * stride_ - padding_ + kh;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < kernel_; ++kw) {
              const int64_t iw = ow * stride_ - padding_ + kw;
              if (iw < 0 || iw >= w) continue;
              acc += plane[ih * w + iw];
            }
          }
          output[out_idx] = acc * inv_area;
        }
    }
  return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  const Shape& in_shape = cached_input_shape_;
  const int64_t n = in_shape[0], c = in_shape[1], h = in_shape[2], w = in_shape[3];
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);
  const float inv_area = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor grad_input(in_shape);
  int64_t out_idx = 0;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = grad_input.data() + (i * c + ch) * h * w;
      for (int64_t oh = 0; oh < out_h; ++oh)
        for (int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          const float g = grad_output[out_idx] * inv_area;
          for (int64_t kh = 0; kh < kernel_; ++kh) {
            const int64_t ih = oh * stride_ - padding_ + kh;
            if (ih < 0 || ih >= h) continue;
            for (int64_t kw = 0; kw < kernel_; ++kw) {
              const int64_t iw = ow * stride_ - padding_ + kw;
              if (iw < 0 || iw >= w) continue;
              plane[ih * w + iw] += g;
            }
          }
        }
    }
  return grad_input;
}

// ---- GlobalAvgPool --------------------------------------------------------------

Shape GlobalAvgPool::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4)
    throw std::invalid_argument("GlobalAvgPool::trace: expected NCHW, got " + input.to_string());
  const Shape output{input[0], input[1]};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kGlobalPool;
    info.name = name();
    info.input = input;
    info.output = output;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_shape_ = input.shape();
  const int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  const float inv = 1.0f / static_cast<float>(plane);

  Tensor output(out_shape);
  for (int64_t i = 0; i < n * c; ++i) {
    const float* src = input.data() + i * plane;
    float acc = 0.0f;
    for (int64_t j = 0; j < plane; ++j) acc += src[j];
    output[i] = acc * inv;
  }
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const Shape& in_shape = cached_input_shape_;
  const int64_t plane = in_shape[2] * in_shape[3];
  const float inv = 1.0f / static_cast<float>(plane);

  Tensor grad_input(in_shape);
  for (int64_t i = 0; i < in_shape[0] * in_shape[1]; ++i) {
    const float g = grad_output[i] * inv;
    float* dst = grad_input.data() + i * plane;
    for (int64_t j = 0; j < plane; ++j) dst[j] = g;
  }
  return grad_input;
}

}  // namespace sesr::nn
