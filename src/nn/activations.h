// Pointwise activation layers.
//
// ReLU / ReLU6 for the classifiers, PReLU for FSRCNN and SESR, LeakyReLU as a
// generic option. All are stateless except PReLU, whose per-channel slopes
// are learnable parameters. Every activation supports the compiled inference
// runtime and registers itself through InferenceBuilder::emit_pointwise, so
// plans run it in place on its producer's buffer where the dataflow allows.
#pragma once

#include "nn/module.h"

namespace sesr::nn {

/// max(x, 0).
class ReLU final : public Module {
 public:
  ReLU() = default;
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "relu"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  int compile_inference(InferenceBuilder& builder, int input) const override;

 private:
  Tensor cached_input_;
};

/// min(max(x, 0), 6) — the MobileNet activation.
class ReLU6 final : public Module {
 public:
  ReLU6() = default;
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "relu6"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  int compile_inference(InferenceBuilder& builder, int input) const override;

 private:
  Tensor cached_input_;
};

/// x >= 0 ? x : slope * x with a fixed slope.
class LeakyReLU final : public Module {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  int compile_inference(InferenceBuilder& builder, int input) const override;

  [[nodiscard]] float slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

/// x >= 0 ? x : a_c * x with one learnable slope per channel (NCHW dim 1).
class PReLU final : public Module {
 public:
  explicit PReLU(int64_t channels, float init_slope = 0.25f);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&slope_}; }
  [[nodiscard]] std::string name() const override { return "prelu"; }
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  int compile_inference(InferenceBuilder& builder, int input) const override;

 private:
  int64_t channels_;
  Parameter slope_;
  Tensor cached_input_;
};

}  // namespace sesr::nn
