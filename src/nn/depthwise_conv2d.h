// Depthwise 2-D convolution (one filter per channel).
//
// Building block of the MobileNet-V2-style classifier's inverted residual
// blocks. Weight layout: [channels, 1, kh, kw].
#pragma once

#include "nn/module.h"

namespace sesr::nn {

struct DepthwiseConv2dOptions {
  int64_t channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = -1;  ///< -1 selects "same" padding (kernel / 2)
  bool bias = true;

  [[nodiscard]] int64_t effective_padding() const { return padding < 0 ? kernel / 2 : padding; }
};

/// Depthwise convolution over NCHW batches (direct implementation).
class DepthwiseConv2d final : public Module {
 public:
  explicit DepthwiseConv2d(DepthwiseConv2dOptions opts);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

  [[nodiscard]] const DepthwiseConv2dOptions& options() const { return opts_; }
  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }

  [[nodiscard]] int64_t out_extent(int64_t in_extent) const {
    return (in_extent + 2 * opts_.effective_padding() - opts_.kernel) / opts_.stride + 1;
  }

 private:
  DepthwiseConv2dOptions opts_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace sesr::nn
