// Pixel rearrangement layers for super resolution.
//
// DepthToSpace ("pixel shuffle") converts [N, C*r^2, H, W] into [N, C, H*r, W*r]
// and is the upsampling head of SESR and EDSR. TileChannels replicates the
// input r^2 times along the channel axis, which — followed by DepthToSpace —
// is how SESR injects its long input residual (each upscaled pixel receives
// its source LR pixel).
#pragma once

#include "nn/module.h"

namespace sesr::nn {

/// Rearranges channel blocks into spatial blocks: output(n, c, h*r+dy, w*r+dx)
/// = input(n, c*r^2 + dy*r + dx, h, w). Matches TensorFlow/PyTorch NCHW
/// depth-to-space semantics.
class DepthToSpace final : public Module {
 public:
  explicit DepthToSpace(int64_t block);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

  [[nodiscard]] int64_t block() const { return block_; }

 private:
  int64_t block_;
  Shape cached_input_shape_;
};

/// Repeats each input channel `times` consecutively along the channel axis:
/// output(n, c*times + t, h, w) = input(n, c, h, w).
///
/// With times = r^2 this matches DepthToSpace's NCHW channel grouping, so
/// TileChannels(r^2) -> add -> DepthToSpace(r) delivers each low-resolution
/// pixel to all r^2 of its upscaled positions (SESR's input residual).
class TileChannels final : public Module {
 public:
  explicit TileChannels(int64_t times);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

 private:
  int64_t times_;
  Shape cached_input_shape_;
};

}  // namespace sesr::nn
