#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sesr::nn {

float fake_quantize_(Tensor& values, const QuantizationSpec& spec) {
  if (spec.bits < 2 || spec.bits > 16)
    throw std::invalid_argument("fake_quantize_: bits in [2, 16]");
  const float lo = values.min(), hi = values.max();
  if (!std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("fake_quantize_: non-finite values");

  if (spec.symmetric) {
    // Symmetric grid: q in [-qmax, qmax], zero at the centre — exactly the
    // int-N weight convention. A constant tensor (including all-zero) still
    // gets a positive scale: its magnitude (or 1) becomes the range bound, so
    // downstream consumers never divide by a zero scale.
    float bound = std::max(std::abs(lo), std::abs(hi));
    if (bound <= 0.0f) bound = 1.0f;
    const float qmax = static_cast<float>((int64_t{1} << (spec.bits - 1)) - 1);
    const float scale = std::max(bound / qmax, std::numeric_limits<float>::min());
    for (float& v : values.flat())
      v = std::clamp(std::round(v / scale), -qmax, qmax) * scale;
    return scale;
  }

  // Asymmetric grid: q in [0, qmax] over [range_lo, range_hi], widened to
  // contain 0 and anchored so that 0 is exactly representable (zero_point is
  // an integer grid index). Degenerate ranges — constant tensors, min == max,
  // all zeros — widen to a positive width instead of collapsing to scale 0.
  float range_lo = std::min(lo, 0.0f), range_hi = std::max(hi, 0.0f);
  if (range_hi - range_lo <= 0.0f) range_hi = range_lo + 1.0f;
  const float qmax = static_cast<float>((int64_t{1} << spec.bits) - 1);
  const float scale =
      std::max((range_hi - range_lo) / qmax, std::numeric_limits<float>::min());
  const float zero_point = std::clamp(std::round(-range_lo / scale), 0.0f, qmax);
  for (float& v : values.flat()) {
    const float q = std::clamp(std::round(v / scale) + zero_point, 0.0f, qmax);
    v = (q - zero_point) * scale;
  }
  return scale;
}

void quantize_weights_(Module& module, const QuantizationSpec& spec) {
  for (Parameter* p : module.parameters()) fake_quantize_(p->value, spec);
}

QuantizedInference::QuantizedInference(ModulePtr body, QuantizationSpec weight_spec,
                                       QuantizationSpec activation_spec)
    : body_(std::move(body)), activation_spec_(activation_spec) {
  if (!body_) throw std::invalid_argument("QuantizedInference: null body");
  quantize_weights_(*body_, weight_spec);
}

Tensor QuantizedInference::forward(const Tensor& input) {
  Tensor x = input;
  fake_quantize_(x, activation_spec_);
  Tensor y = body_->forward(x);
  fake_quantize_(y, activation_spec_);
  return y;
}

}  // namespace sesr::nn
