#include "nn/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesr::nn {

float fake_quantize_(Tensor& values, const QuantizationSpec& spec) {
  if (spec.bits < 2 || spec.bits > 16)
    throw std::invalid_argument("fake_quantize_: bits in [2, 16]");
  float lo = values.min(), hi = values.max();
  if (spec.symmetric) {
    const float bound = std::max(std::abs(lo), std::abs(hi));
    lo = -bound;
    hi = bound;
  }
  if (hi - lo < 1e-12f) return 0.0f;  // constant tensor: representable exactly

  const int64_t qmax = (int64_t{1} << spec.bits) - 1;
  const float scale = (hi - lo) / static_cast<float>(qmax);
  for (float& v : values.flat()) {
    const float q = std::round((v - lo) / scale);
    v = std::clamp(q, 0.0f, static_cast<float>(qmax)) * scale + lo;
  }
  return scale;
}

void quantize_weights_(Module& module, const QuantizationSpec& spec) {
  for (Parameter* p : module.parameters()) fake_quantize_(p->value, spec);
}

QuantizedInference::QuantizedInference(ModulePtr body, QuantizationSpec weight_spec,
                                       QuantizationSpec activation_spec)
    : body_(std::move(body)), activation_spec_(activation_spec) {
  if (!body_) throw std::invalid_argument("QuantizedInference: null body");
  quantize_weights_(*body_, weight_spec);
}

Tensor QuantizedInference::forward(const Tensor& input) {
  Tensor x = input;
  fake_quantize_(x, activation_spec_);
  Tensor y = body_->forward(x);
  fake_quantize_(y, activation_spec_);
  return y;
}

}  // namespace sesr::nn
