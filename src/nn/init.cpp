#include "nn/init.h"

#include <cmath>

namespace sesr::nn {

void he_normal_(Tensor& weight, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (float& v : weight.flat()) v = rng.normal(0.0f, stddev);
}

void xavier_uniform_(Tensor& weight, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : weight.flat()) v = rng.uniform(-a, a);
}

void init_he_normal(Module& module, Rng& rng) {
  for (Parameter* p : module.parameters()) {
    // Keep constructor defaults for parameters with meaningful non-zero
    // initial values (PReLU slopes, GroupNorm scale).
    if (p->name == "prelu_slope" || p->name == "gn_gamma") continue;
    if (p->value.ndim() >= 2) {
      // fan_in = product of all dims except dim 0 (out channels / features).
      // ConvTranspose2d stores [in, out, kh, kw]; using dim-0 product there
      // still yields a reasonable scale, and SR nets re-init heads anyway.
      int64_t fan_in = 1;
      for (int d = 1; d < p->value.ndim(); ++d) fan_in *= p->value.dim(d);
      he_normal_(p->value, fan_in, rng);
    } else {
      p->value.fill(0.0f);
    }
  }
}

}  // namespace sesr::nn
