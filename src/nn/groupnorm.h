// Group normalisation (Wu & He, ECCV 2018).
//
// Normalises each sample over channel groups: y = gamma * (x - mu) / sigma +
// beta, with statistics over (C/G, H, W) per group. Chosen over batch norm
// for the classifier families because it has no train/eval mode split and no
// running statistics — the whole library stays deterministic and mode-free,
// which matters when the same forward pass serves training, attack crafting
// and defended inference. At deployment normalisation layers fold into the
// preceding convolution, so the hardware cost model prices them at zero
// (matching how Vela compiles BN for the Ethos-U55).
#pragma once

#include "nn/module.h"

namespace sesr::nn {

class GroupNorm final : public Module {
 public:
  /// `channels` must be divisible by `groups`. `init_gamma` sets the initial
  /// scale; passing 0 on the last norm of a residual branch makes the block
  /// start as an identity mapping (the standard "zero-init residual" trick),
  /// which markedly improves trainability of deeper stacks. init_weights
  /// preserves whatever the constructor set.
  GroupNorm(int64_t channels, int64_t groups = 8, float eps = 1e-5f, float init_gamma = 1.0f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

 private:
  int64_t channels_, groups_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  // Cached by forward for backward.
  Tensor cached_input_;
  std::vector<float> cached_mean_, cached_inv_std_;  // per (sample, group)
};

}  // namespace sesr::nn
