// Transposed (fractionally-strided) 2-D convolution.
//
// Used by FSRCNN's 9x9 stride-2 deconvolution upsampler. Weight layout
// follows the PyTorch convention: [in_channels, out_channels, kh, kw].
// Output extent: (in - 1) * stride - 2 * padding + kernel + output_padding.
#pragma once

#include "nn/module.h"

namespace sesr::nn {

struct ConvTranspose2dOptions {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 9;
  int64_t stride = 2;
  int64_t padding = 4;
  int64_t output_padding = 1;
  bool bias = true;
};

/// Transposed convolution over NCHW batches (direct scatter implementation —
/// the FSRCNN deconv is small enough that a GEMM lowering is not warranted).
class ConvTranspose2d final : public Module {
 public:
  explicit ConvTranspose2d(ConvTranspose2dOptions opts);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<LayerInfo>* out) const override;
  void infer_into(const Tensor& input, Tensor& output, Workspace& workspace) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }
  [[nodiscard]] const ConvTranspose2dOptions& options() const { return opts_; }

  [[nodiscard]] int64_t out_extent(int64_t in_extent) const {
    return (in_extent - 1) * opts_.stride - 2 * opts_.padding + opts_.kernel +
           opts_.output_padding;
  }

 private:
  ConvTranspose2dOptions opts_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace sesr::nn
