#include "nn/pixel_ops.h"

#include <algorithm>
#include <stdexcept>

namespace sesr::nn {

// ---- DepthToSpace -------------------------------------------------------------

DepthToSpace::DepthToSpace(int64_t block) : block_(block) {
  if (block <= 0) throw std::invalid_argument("DepthToSpace: block must be positive");
}

std::string DepthToSpace::name() const { return "depth2space_x" + std::to_string(block_); }

Shape DepthToSpace::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  const int64_t r2 = block_ * block_;
  if (input.ndim() != 4 || input[1] % r2 != 0)
    throw std::invalid_argument("DepthToSpace::trace: channels of " + input.to_string() +
                                " not divisible by block^2");
  const Shape output{input[0], input[1] / r2, input[2] * block_, input[3] * block_};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kDepthToSpace;
    info.name = name();
    info.input = input;
    info.output = output;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor DepthToSpace::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_shape_ = input.shape();
  Tensor output(out_shape);
  Workspace unused;  // the rearrangement needs no scratch
  infer_into(input, output, unused);
  return output;
}

void DepthToSpace::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0), c_out = output.dim(1);
  const int64_t h = input.dim(2), w = input.dim(3), r = block_;
  for (int64_t i = 0; i < n; ++i)
    for (int64_t c = 0; c < c_out; ++c)
      for (int64_t dy = 0; dy < r; ++dy)
        for (int64_t dx = 0; dx < r; ++dx) {
          const float* in_plane =
              input.data() + ((i * input.dim(1)) + c * r * r + dy * r + dx) * h * w;
          for (int64_t y = 0; y < h; ++y) {
            float* out_row = output.data() +
                             ((i * c_out + c) * h * r + (y * r + dy)) * w * r + dx;
            const float* in_row = in_plane + y * w;
            for (int64_t x = 0; x < w; ++x) out_row[x * r] = in_row[x];
          }
        }
}

Tensor DepthToSpace::backward(const Tensor& grad_output) {
  const Shape& in_shape = cached_input_shape_;
  const int64_t n = in_shape[0], c_in = in_shape[1], h = in_shape[2], w = in_shape[3];
  const int64_t r = block_, c_out = c_in / (r * r);

  Tensor grad_input(in_shape);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t c = 0; c < c_out; ++c)
      for (int64_t dy = 0; dy < r; ++dy)
        for (int64_t dx = 0; dx < r; ++dx) {
          float* gin_plane = grad_input.data() + ((i * c_in) + c * r * r + dy * r + dx) * h * w;
          for (int64_t y = 0; y < h; ++y) {
            const float* g_row = grad_output.data() +
                                 ((i * c_out + c) * h * r + (y * r + dy)) * w * r + dx;
            float* gin_row = gin_plane + y * w;
            for (int64_t x = 0; x < w; ++x) gin_row[x] = g_row[x * r];
          }
        }
  return grad_input;
}

// ---- TileChannels ---------------------------------------------------------------

TileChannels::TileChannels(int64_t times) : times_(times) {
  if (times <= 0) throw std::invalid_argument("TileChannels: times must be positive");
}

std::string TileChannels::name() const { return "tile_channels_x" + std::to_string(times_); }

Shape TileChannels::trace(const Shape& input, std::vector<LayerInfo>* out) const {
  if (input.ndim() != 4)
    throw std::invalid_argument("TileChannels::trace: expected NCHW, got " + input.to_string());
  const Shape output{input[0], input[1] * times_, input[2], input[3]};
  if (out) {
    LayerInfo info;
    info.kind = LayerKind::kIdentity;
    info.name = name();
    info.input = input;
    info.output = output;
    out->push_back(std::move(info));
  }
  return output;
}

Tensor TileChannels::forward(const Tensor& input) {
  const Shape out_shape = trace(input.shape(), nullptr);
  cached_input_shape_ = input.shape();
  Tensor output(out_shape);
  Workspace unused;  // the replication needs no scratch
  infer_into(input, output, unused);
  return output;
}

void TileChannels::infer_into(const Tensor& input, Tensor& output, Workspace&) const {
  const int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = input.data() + (i * c + ch) * plane;
      for (int64_t t = 0; t < times_; ++t) {
        float* dst = output.data() + ((i * c + ch) * times_ + t) * plane;
        std::copy(src, src + plane, dst);
      }
    }
}

Tensor TileChannels::backward(const Tensor& grad_output) {
  const Shape& in_shape = cached_input_shape_;
  const int64_t n = in_shape[0], c = in_shape[1], plane = in_shape[2] * in_shape[3];

  Tensor grad_input(in_shape);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t ch = 0; ch < c; ++ch) {
      float* dst = grad_input.data() + (i * c + ch) * plane;
      for (int64_t t = 0; t < times_; ++t) {
        const float* src = grad_output.data() + ((i * c + ch) * times_ + t) * plane;
        for (int64_t j = 0; j < plane; ++j) dst[j] += src[j];
      }
    }
  return grad_input;
}

}  // namespace sesr::nn
