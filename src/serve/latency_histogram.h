// The serving engine's latency histogram is the shared observability
// histogram (obs::Histogram): same log-linear buckets and lock-free
// record_us as before, plus a mergeable snapshot so per-shard latency
// distributions combine into a fleet view. This alias keeps the historical
// serve-layer spelling.
#pragma once

#include "obs/histogram.h"

namespace sesr::serve {

using LatencyHistogram = obs::Histogram;

}  // namespace sesr::serve
