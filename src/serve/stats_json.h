// ServerStats / TenantStats <-> JSON.
//
// The distributed tier's shards report their serving metrics to the frontend
// over the wire (dist/wire.h kPong carries a stats JSON body), and ops
// tooling scrapes the same document. The encoding is plain flat JSON —
// every counter field by name, the latency snapshot as a nested object, the
// batch-size distribution as an array, tenants as an object keyed by tenant
// id — and round-trips exactly: stats_from_json(stats_to_json(s)) compares
// equal field-for-field (doubles are emitted with round-trip precision).
//
// The parser accepts any field order, skips unknown fields (a newer shard
// may report counters an older frontend does not know), and throws
// std::runtime_error with a byte offset for malformed documents.
#pragma once

#include <string>

#include "serve/server.h"

namespace sesr::serve {

[[nodiscard]] std::string stats_to_json(const ServerStats& stats);
[[nodiscard]] std::string stats_to_json(const TenantStats& stats);

/// Parse a document produced by stats_to_json (or a superset of it).
/// Throws std::runtime_error on malformed JSON or wrongly-typed fields.
[[nodiscard]] ServerStats server_stats_from_json(const std::string& json);
[[nodiscard]] TenantStats tenant_stats_from_json(const std::string& json);

}  // namespace sesr::serve
