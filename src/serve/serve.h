// Umbrella header for the serving engine: bounded request queue,
// micro-batcher + worker pool (Server), multi-tenant model registry with
// RCU hot-swap, deterministic fault injection, and the latency SLO metrics.
#pragma once

#include "serve/bounded_queue.h"     // IWYU pragma: export
#include "serve/fault_plan.h"        // IWYU pragma: export
#include "serve/latency_histogram.h" // IWYU pragma: export
#include "serve/registry.h"          // IWYU pragma: export
#include "serve/server.h"            // IWYU pragma: export
