// Deterministic fault-injection schedule for the serving engine's
// correctness harness.
//
// The soak test (tests/serve/soak_test.cpp) hammers the registry-backed
// server with concurrent submits, hot-swaps, and injected faults; for a
// failure to be debuggable the *schedule* of those faults must be a pure
// function of a seed, not of thread timing. FaultPlan is that schedule: one
// object, shared by every fault consumer, whose decisions depend only on
// (options, index) — so concurrent consumers need no synchronisation beyond
// the fired-counters, and one seed requests exactly the same fault sequence
// on every run.
//
// Consumers and their seams:
//   - kernel_fault(i)     — the i-th kernel dispatch of a fault-injecting
//                           test module (tests/support/fault_injection.h's
//                           FaultingAffine) throws mid-inference, exercising
//                           the session-pool unwind and kError reply paths.
//   - worker_stall(i)     — Server consults this before dispatching its i-th
//                           batch (Options::fault_plan) and sleeps, modelling
//                           a descheduled/pagefaulting worker so queues fill
//                           and deadlines expire behind it.
//   - overflow_burst(t)   — load generators consult this per tick and blast
//                           try_submit bursts, exercising queue-full
//                           rejection under otherwise-nominal load.
//   - precision_flip(s)   — the hot-swap publisher consults this per swap
//                           and flips the published artifact's precision
//                           (fp32 <-> int8) mid-load.
//
// The phase of each period is scrambled per seam from the seed, so the four
// fault kinds do not all land on the same indices.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sesr::serve {

class FaultPlan {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Every Nth kernel dispatch throws (0 = never).
    int64_t kernel_fault_period = 0;
    /// Every Nth batch dispatch stalls for `worker_stall_for` (0 = never).
    int64_t worker_stall_period = 0;
    std::chrono::microseconds worker_stall_for{500};
    /// Every Nth generator tick submits an extra burst (0 = never).
    int64_t overflow_burst_period = 0;
    int64_t overflow_burst_size = 32;
    /// Every Nth hot-swap flips the published precision (0 = never).
    int64_t precision_flip_period = 0;
  };

  explicit FaultPlan(const Options& options) : options_(options) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// True when the `index`-th kernel dispatch should throw.
  [[nodiscard]] bool kernel_fault(int64_t index) const {
    const bool hit = fires(options_.kernel_fault_period, index, 0x6b65726eu);
    if (hit) kernel_faults_fired_.fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  /// Stall duration before dispatching the `index`-th batch (0 = none).
  [[nodiscard]] std::chrono::microseconds worker_stall(int64_t index) const {
    if (!fires(options_.worker_stall_period, index, 0x7374616cu))
      return std::chrono::microseconds{0};
    worker_stalls_fired_.fetch_add(1, std::memory_order_relaxed);
    return options_.worker_stall_for;
  }

  /// Extra try_submit calls the load generator owes on tick `index`.
  [[nodiscard]] int64_t overflow_burst(int64_t index) const {
    if (!fires(options_.overflow_burst_period, index, 0x62727374u)) return 0;
    overflow_bursts_fired_.fetch_add(1, std::memory_order_relaxed);
    return options_.overflow_burst_size;
  }

  /// True when the `index`-th hot-swap should flip the serving precision.
  [[nodiscard]] bool precision_flip(int64_t index) const {
    const bool hit = fires(options_.precision_flip_period, index, 0x666c6970u);
    if (hit) precision_flips_fired_.fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  // Fired-counters: a soak run must be able to assert its injections
  // actually exercised the paths (a fault plan that never fires proves
  // nothing).
  [[nodiscard]] int64_t kernel_faults_fired() const {
    return kernel_faults_fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t worker_stalls_fired() const {
    return worker_stalls_fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t overflow_bursts_fired() const {
    return overflow_bursts_fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t precision_flips_fired() const {
    return precision_flips_fired_.load(std::memory_order_relaxed);
  }

 private:
  /// Period check with a seed- and seam-scrambled phase: deterministic for a
  /// seed, but different seams fault on different indices.
  [[nodiscard]] bool fires(int64_t period, int64_t index, uint32_t salt) const {
    if (period <= 0 || index < 0) return false;
    // splitmix64 of (seed ^ salt) — a cheap, well-mixed phase.
    uint64_t z = options_.seed ^ salt;
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const int64_t phase = static_cast<int64_t>(z % static_cast<uint64_t>(period));
    return (index + phase) % period == 0;
  }

  Options options_;
  mutable std::atomic<int64_t> kernel_faults_fired_{0};
  mutable std::atomic<int64_t> worker_stalls_fired_{0};
  mutable std::atomic<int64_t> overflow_bursts_fired_{0};
  mutable std::atomic<int64_t> precision_flips_fired_{0};
};

}  // namespace sesr::serve
