// Bounded MPMC queue — the admission-control primitive of the serving engine.
//
// A fixed-capacity FIFO shared by any number of producers (request submitters)
// and consumers (batch workers). Capacity is the backpressure mechanism:
// push() blocks while the queue is full, try_push() refuses instead, so an
// overloaded server either slows its clients down or sheds at the door —
// memory stays bounded either way. close() starts shutdown: producers are
// turned away immediately, consumers drain what was already admitted and then
// see end-of-stream.
//
// pop_batch() is the micro-batcher's pop: it takes the front item, then
// greedily takes further front items while a caller-supplied compatibility
// predicate accepts them against the first (same input shape, in the serving
// engine), optionally lingering a bounded time for more compatible arrivals
// when the batch is still short. FIFO order is never violated — a batch is
// always a contiguous prefix of the queue, so an incompatible head request is
// never overtaken by compatible ones behind it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sesr::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity) : capacity_(capacity) {
    if (capacity <= 0) throw std::invalid_argument("BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room, then enqueue. Returns false (item untouched
  /// by the move only on success) when the queue is or becomes closed.
  bool push(T&& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || size_ok(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_size_ = std::max(peak_size_, static_cast<int64_t>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false — leaving `item` intact — when the
  /// queue is full or closed.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || !size_ok()) return false;
      items_.push_back(std::move(item));
      peak_size_ = std::max(peak_size_, static_cast<int64_t>(items_.size()));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available; nullopt when closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Micro-batching pop: block for the front item, then extend the batch with
  /// further front items while `compatible(candidate, out.front())` holds, up
  /// to `max` items. While the batch is shorter than `max` and the queue is
  /// empty, wait up to `linger` (measured from the first item) for more
  /// arrivals; an incompatible head ends the batch immediately, so requests
  /// are never reordered. Appends to `out` and returns true; returns false —
  /// with `out` untouched — only when the queue is closed and drained.
  template <typename Compatible>
  bool pop_batch(std::vector<T>& out, int64_t max, Compatible&& compatible,
                 std::chrono::microseconds linger = std::chrono::microseconds{0}) {
    if (max <= 0) throw std::invalid_argument("BoundedQueue::pop_batch: max must be positive");
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    const size_t base = out.size();
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    const auto deadline = std::chrono::steady_clock::now() + linger;
    while (static_cast<int64_t>(out.size() - base) < max) {
      if (!items_.empty()) {
        if (!compatible(items_.front(), out[base])) break;
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        continue;
      }
      if (closed_ || linger <= std::chrono::microseconds{0}) break;
      // Queue empty: linger for more compatible arrivals (bounded latency cost).
      if (!not_empty_.wait_until(lock, deadline,
                                 [&] { return closed_ || !items_.empty(); }))
        break;  // lingered the full budget; dispatch what we have
    }
    lock.unlock();
    // Several producers may now fit; wake them all.
    not_full_.notify_all();
    return true;
  }

  /// Turn new producers away; consumers drain the remaining items and then
  /// get end-of-stream. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] int64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(items_.size());
  }

  /// High-water mark of the queue depth since construction (SLO metric).
  [[nodiscard]] int64_t peak_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_size_;
  }

  [[nodiscard]] int64_t capacity() const { return capacity_; }

 private:
  [[nodiscard]] bool size_ok() const {
    return static_cast<int64_t>(items_.size()) < capacity_;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const int64_t capacity_;
  int64_t peak_size_ = 0;
  bool closed_ = false;
};

}  // namespace sesr::serve
