// Multi-tenant model registry with RCU-style hot-swap.
//
// A serving deployment does not run one model forever: artifacts get
// recalibrated (new int8 scales), precision gets flipped (fp32 canary, int8
// steady-state), and several model ids share one box. The registry is the
// control plane for that: a map from model id to a *versioned snapshot* —
// upscaler + precision + quantized artifact — that the Server's data plane
// resolves per batch dispatch.
//
// Swap semantics (the RCU part):
//
//        readers (worker dispatch)            writer (publish)
//        ─────────────────────────            ────────────────
//        acquire(id) ──► shared_ptr     build new upscaler (same
//        to the current Snapshot;       underlying network module,
//        dispatch runs on it with       fresh plan cache / session
//        no further coordination        pool), warm it, then install
//              │                        it as version v+1
//              ▼                               │
//        refcount keeps the old                ▼
//        Snapshot (plans, pooled        old Snapshot stays valid for
//        sessions) alive until the      in-flight dispatches; freed
//        last in-flight dispatch        when the last reader drops it
//        drops its reference
//
// The barrier guarantee the soak test asserts: publish() returns only after
// the new snapshot is installed, so any request *submitted after publish()
// returns* is answered by version >= the published one (dispatch acquires at
// pop time, versions are monotonic per id). Requests already in flight
// finish on whatever snapshot their dispatch acquired — never a torn mix,
// never a dropped request.
//
// Why a fresh NetworkUpscaler per publish instead of mutating in place:
// NetworkUpscaler::set_precision/set_quantized_model drop the plan cache and
// session pools under the same lock every in-flight dispatch uses, so an
// in-place swap stalls the data plane behind recompiles and briefly serves
// version-ambiguous replies. Building the sibling off to the side keeps the
// data plane lock-free with respect to publishing, and makes "which version
// answered this request" exact — the Snapshot the dispatch held.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/upscaler.h"
#include "quant/quantized_model.h"
#include "runtime/program.h"
#include "tensor/shape.h"

namespace sesr::serve {

/// Immutable view of one published model version. Snapshot lifetime is the
/// RCU grace period: holders may dispatch on `upscaler` for as long as they
/// keep the shared_ptr, regardless of later publishes.
struct ModelSnapshot {
  std::string model;    ///< registry id this snapshot belongs to
  int64_t version = 0;  ///< monotonically increasing per id, starting at 1
  runtime::Precision precision = runtime::Precision::kFloat32;

  std::shared_ptr<models::Upscaler> upscaler;
  /// Typed view of `upscaler` when it is network-backed (warmup, precision
  /// introspection); nullptr for e.g. interpolation upscalers.
  models::NetworkUpscaler* network = nullptr;
  /// The int8 artifact this version serves with (nullptr for fp32).
  std::shared_ptr<const quant::QuantizedModel> artifact;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Register a network-backed model id at version 1 (fp32). The module is
  /// retained so later publishes can build sibling upscalers around the same
  /// weights. Throws std::invalid_argument if `id` is already registered.
  void register_model(const std::string& id, const std::string& label,
                      std::shared_ptr<nn::Module> network);

  /// Register an arbitrary upscaler (e.g. interpolation) at version 1. Such
  /// ids serve forever at version 1 unless publish() installs a replacement;
  /// publish_fp32/publish_int8 throw for them (no module to rebuild from).
  void register_upscaler(const std::string& id, std::shared_ptr<models::Upscaler> upscaler);

  /// RCU read side: the current snapshot for `id` (never nullptr). Throws
  /// std::out_of_range for unregistered ids. O(log models) + one shared_ptr
  /// copy; safe from any thread.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> acquire(const std::string& id) const;

  [[nodiscard]] bool contains(const std::string& id) const;

  /// Current version of `id` (the swap barrier: submissions made after this
  /// read are answered by version >= the returned value).
  [[nodiscard]] int64_t version(const std::string& id) const;

  /// Publish a rebuilt fp32 sibling of a network-backed id as the next
  /// version. `warm_shapes` ([N, C, H, W], may be empty) are precompiled and
  /// session-prefilled on the *new* upscaler before it is installed, so the
  /// swap costs requests nothing. Returns the new version.
  int64_t publish_fp32(const std::string& id, const std::vector<Shape>& warm_shapes = {},
                       int warm_sessions = 1);

  /// Publish an int8 sibling serving the given artifact as the next version.
  int64_t publish_int8(const std::string& id,
                       std::shared_ptr<const quant::QuantizedModel> artifact,
                       const std::vector<Shape>& warm_shapes = {}, int warm_sessions = 1);

  /// Publish a caller-prepared upscaler as the next version of `id` (the
  /// escape hatch for custom swaps; precision/artifact recorded from the
  /// upscaler when it is network-backed). Returns the new version.
  int64_t publish(const std::string& id, std::shared_ptr<models::Upscaler> upscaler);

  [[nodiscard]] std::vector<std::string> model_ids() const;
  [[nodiscard]] size_t size() const;

 private:
  /// Registered model. Entries are never removed, so Entry pointers are
  /// stable for the registry's lifetime. `current` is guarded by `mutex`;
  /// readers copy the shared_ptr out (sub-microsecond) and dispatch outside
  /// the lock — publish builds the replacement entirely before taking it.
  struct Entry {
    std::string label;
    std::shared_ptr<nn::Module> network;  ///< null for register_upscaler ids
    mutable std::mutex mutex;
    std::shared_ptr<const ModelSnapshot> current;
    int64_t next_version = 1;
  };

  Entry& entry_for(const std::string& id) const;
  int64_t install(Entry& entry, std::shared_ptr<ModelSnapshot> snapshot);

  mutable std::mutex models_mutex_;  ///< guards the map shape only
  std::map<std::string, std::unique_ptr<Entry>> models_;
};

}  // namespace sesr::serve
