#include "serve/registry.h"

#include <stdexcept>
#include <utility>

namespace sesr::serve {

void ModelRegistry::register_model(const std::string& id, const std::string& label,
                                   std::shared_ptr<nn::Module> network) {
  if (!network) throw std::invalid_argument("ModelRegistry::register_model: null network");
  auto upscaler = std::make_shared<models::NetworkUpscaler>(label, network);
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = id;
  snapshot->precision = runtime::Precision::kFloat32;
  snapshot->network = upscaler.get();
  snapshot->upscaler = std::move(upscaler);

  std::lock_guard<std::mutex> lock(models_mutex_);
  auto [it, inserted] = models_.emplace(id, std::make_unique<Entry>());
  if (!inserted)
    throw std::invalid_argument("ModelRegistry: model id already registered: " + id);
  Entry& entry = *it->second;
  entry.label = label;
  entry.network = std::move(network);
  install(entry, std::move(snapshot));
}

void ModelRegistry::register_upscaler(const std::string& id,
                                      std::shared_ptr<models::Upscaler> upscaler) {
  if (!upscaler) throw std::invalid_argument("ModelRegistry::register_upscaler: null upscaler");
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = id;
  snapshot->network = dynamic_cast<models::NetworkUpscaler*>(upscaler.get());
  if (snapshot->network != nullptr) snapshot->precision = snapshot->network->precision();
  snapshot->upscaler = std::move(upscaler);

  std::lock_guard<std::mutex> lock(models_mutex_);
  auto [it, inserted] = models_.emplace(id, std::make_unique<Entry>());
  if (!inserted)
    throw std::invalid_argument("ModelRegistry: model id already registered: " + id);
  Entry& entry = *it->second;
  entry.label = snapshot->upscaler->label();
  install(entry, std::move(snapshot));
}

ModelRegistry::Entry& ModelRegistry::entry_for(const std::string& id) const {
  std::lock_guard<std::mutex> lock(models_mutex_);
  const auto it = models_.find(id);
  if (it == models_.end())
    throw std::out_of_range("ModelRegistry: unknown model id: " + id);
  return *it->second;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::acquire(const std::string& id) const {
  Entry& entry = entry_for(id);
  std::lock_guard<std::mutex> lock(entry.mutex);
  return entry.current;
}

bool ModelRegistry::contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(models_mutex_);
  return models_.count(id) > 0;
}

int64_t ModelRegistry::version(const std::string& id) const {
  Entry& entry = entry_for(id);
  std::lock_guard<std::mutex> lock(entry.mutex);
  return entry.current->version;
}

int64_t ModelRegistry::install(Entry& entry, std::shared_ptr<ModelSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(entry.mutex);
  snapshot->version = entry.next_version++;
  const int64_t version = snapshot->version;
  entry.current = std::move(snapshot);  // the old snapshot's refcount is now
                                        // the grace period
  return version;
}

int64_t ModelRegistry::publish_fp32(const std::string& id, const std::vector<Shape>& warm_shapes,
                                    int warm_sessions) {
  Entry& entry = entry_for(id);
  if (!entry.network)
    throw std::invalid_argument("ModelRegistry::publish_fp32: " + id +
                                " is not network-backed; use publish()");
  auto upscaler = std::make_shared<models::NetworkUpscaler>(entry.label, entry.network);
  for (const Shape& shape : warm_shapes) upscaler->warmup(shape, warm_sessions);

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = id;
  snapshot->precision = runtime::Precision::kFloat32;
  snapshot->network = upscaler.get();
  snapshot->upscaler = std::move(upscaler);
  return install(entry, std::move(snapshot));
}

int64_t ModelRegistry::publish_int8(const std::string& id,
                                    std::shared_ptr<const quant::QuantizedModel> artifact,
                                    const std::vector<Shape>& warm_shapes, int warm_sessions) {
  if (!artifact) throw std::invalid_argument("ModelRegistry::publish_int8: null artifact");
  Entry& entry = entry_for(id);
  if (!entry.network)
    throw std::invalid_argument("ModelRegistry::publish_int8: " + id +
                                " is not network-backed; use publish()");
  auto upscaler = std::make_shared<models::NetworkUpscaler>(entry.label, entry.network);
  upscaler->set_quantized_model(artifact);
  for (const Shape& shape : warm_shapes) upscaler->warmup(shape, warm_sessions);

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = id;
  snapshot->precision = runtime::Precision::kInt8;
  snapshot->network = upscaler.get();
  snapshot->upscaler = std::move(upscaler);
  snapshot->artifact = std::move(artifact);
  return install(entry, std::move(snapshot));
}

int64_t ModelRegistry::publish(const std::string& id,
                               std::shared_ptr<models::Upscaler> upscaler) {
  if (!upscaler) throw std::invalid_argument("ModelRegistry::publish: null upscaler");
  Entry& entry = entry_for(id);

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model = id;
  snapshot->network = dynamic_cast<models::NetworkUpscaler*>(upscaler.get());
  if (snapshot->network != nullptr) {
    snapshot->precision = snapshot->network->precision();
    snapshot->artifact = snapshot->network->quantized_model();
  }
  snapshot->upscaler = std::move(upscaler);
  return install(entry, std::move(snapshot));
}

std::vector<std::string> ModelRegistry::model_ids() const {
  std::lock_guard<std::mutex> lock(models_mutex_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, entry] : models_) ids.push_back(id);
  return ids;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(models_mutex_);
  return models_.size();
}

}  // namespace sesr::serve
