#include "serve/server.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

namespace sesr::serve {

using Clock = std::chrono::steady_clock;

const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kError: return "error";
  }
  return "?";
}

namespace detail {

/// Shared completion slot behind a ServeFuture or a callback submission.
struct ResultState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  ServeReply reply;
  ServeCallback callback;  ///< set at submission; invoked instead of storing
};

}  // namespace detail

bool ServeFuture::ready() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->ready;
}

bool ServeFuture::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) return false;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock, timeout, [&] { return state_->ready; });
}

ServeReply ServeFuture::get() {
  if (!state_) throw std::logic_error("ServeFuture::get: empty future");
  std::shared_ptr<detail::ResultState> state = std::move(state_);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] { return state->ready; });
  return std::move(state->reply);
}

/// One admitted request, queued until a worker dispatches (or sheds) it.
struct Server::Request {
  Tensor input;  ///< normalized to [1, C, H, W]
  std::shared_ptr<detail::ResultState> state;
  Clock::time_point enqueued;
  Clock::time_point deadline;  ///< time_point::max() = none
};

Server::Server(std::shared_ptr<models::Upscaler> upscaler, const Options& options)
    : upscaler_(std::move(upscaler)),
      options_(options),
      batch_size_counts_(static_cast<size_t>(std::max<int64_t>(options.max_batch, 1)) + 1) {
  if (!upscaler_) throw std::invalid_argument("Server: null upscaler");
  if (options_.workers < 1) throw std::invalid_argument("Server: workers must be >= 1");
  if (options_.max_batch < 1) throw std::invalid_argument("Server: max_batch must be >= 1");
  queue_ = std::make_unique<BoundedQueue<Request>>(options_.queue_capacity);
  workers_.reserve(static_cast<size_t>(options_.workers));
  try {
    for (int i = 0; i < options_.workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // A failed spawn (e.g. EAGAIN on a thread-limited host) must unwind the
    // workers already running, or their joinable destructors terminate.
    queue_->close();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  std::call_once(stop_once_, [&] {
    queue_->close();  // workers drain what was admitted, then exit
    for (std::thread& worker : workers_) worker.join();
  });
}

namespace {

/// Accept [C, H, W] or [1, C, H, W]; hand back the batchable [1, C, H, W]
/// form (pure metadata change — the storage moves through).
Tensor normalize_single_image(Tensor image) {
  const Shape& shape = image.shape();
  if (shape.ndim() == 3) return std::move(image).reshaped({1, shape[0], shape[1], shape[2]});
  if (shape.ndim() == 4 && shape[0] == 1) return image;
  throw std::invalid_argument("Server: expected a single [C, H, W] or [1, C, H, W] image, got " +
                              shape.to_string());
}

Clock::time_point deadline_for(std::chrono::milliseconds requested,
                               std::chrono::milliseconds fallback) {
  const std::chrono::milliseconds effective =
      requested.count() > 0 ? requested : fallback;
  if (effective.count() <= 0) return Clock::time_point::max();
  return Clock::now() + effective;
}

}  // namespace

void Server::complete(Request& request, ServeReply reply) {
  detail::ResultState& state = *request.state;
  if (state.callback) {
    // Callback submissions have no waiter; deliver on this worker thread.
    // A throwing callback must not take the server down — swallow it (the
    // contract is "callbacks do not throw").
    try {
      state.callback(std::move(reply));
    } catch (...) {
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.reply = std::move(reply);
    state.ready = true;
  }
  state.cv.notify_all();
}

ServeFuture Server::submit(Tensor image, std::chrono::milliseconds deadline) {
  Request request{normalize_single_image(std::move(image)),
                  std::make_shared<detail::ResultState>(), Clock::now(),
                  deadline_for(deadline, options_.default_deadline)};
  ServeFuture future(request.state);
  if (!queue_->push(std::move(request))) {
    // Stopped: fail fast instead of leaving the future forever pending.
    Request dead{Tensor(), future.state_, Clock::now(), Clock::time_point::max()};
    complete(dead, {ServeStatus::kError, Tensor(), "server stopped"});
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Server::submit_async(Tensor image, ServeCallback callback,
                          std::chrono::milliseconds deadline) {
  if (!callback) throw std::invalid_argument("Server::submit_async: null callback");
  Request request{normalize_single_image(std::move(image)),
                  std::make_shared<detail::ResultState>(), Clock::now(),
                  deadline_for(deadline, options_.default_deadline)};
  request.state->callback = std::move(callback);
  if (!queue_->push(std::move(request))) {
    Request dead{Tensor(), std::move(request.state), Clock::now(), Clock::time_point::max()};
    complete(dead, {ServeStatus::kError, Tensor(), "server stopped"});
    return;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

bool Server::try_submit(Tensor image, ServeCallback callback,
                        std::chrono::milliseconds deadline) {
  if (!callback) throw std::invalid_argument("Server::try_submit: null callback");
  Request request{normalize_single_image(std::move(image)),
                  std::make_shared<detail::ResultState>(), Clock::now(),
                  deadline_for(deadline, options_.default_deadline)};
  request.state->callback = std::move(callback);
  if (!queue_->try_push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Server::warmup(const Shape& single_image_chw) {
  auto* network = dynamic_cast<models::NetworkUpscaler*>(upscaler_.get());
  if (network == nullptr) return;  // e.g. interpolation: nothing to precompile
  if (single_image_chw.ndim() != 3)
    throw std::invalid_argument("Server::warmup: expected a [C, H, W] shape, got " +
                                single_image_chw.to_string());
  // Every batch size a worker can dispatch is its own compiled shape; one
  // pooled session per shape per worker covers the worst concurrent case.
  for (int64_t batch = 1; batch <= options_.max_batch; ++batch)
    network->warmup({batch, single_image_chw[0], single_image_chw[1], single_image_chw[2]},
                    options_.workers);
}

void Server::worker_loop() {
  std::vector<Request> batch;
  std::vector<Request> live;
  Tensor gather_staging;  // reused across dispatches (resized on shape change)
  const auto same_shape = [](const Request& candidate, const Request& first) {
    return candidate.input.shape() == first.input.shape();
  };
  for (;;) {
    batch.clear();
    if (!queue_->pop_batch(batch, options_.max_batch, same_shape, options_.batch_linger))
      return;  // stopped and drained

    // Deadline-based load shedding: answers nobody is waiting for anymore
    // are dropped before they can waste a dispatch.
    const Clock::time_point now = Clock::now();
    live.clear();
    for (Request& request : batch) {
      if (request.deadline < now) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        complete(request, {ServeStatus::kShed, Tensor(), "deadline expired in queue"});
      } else {
        live.push_back(std::move(request));
      }
    }
    if (live.empty()) continue;
    dispatch(live, gather_staging);
  }
}

void Server::dispatch(std::vector<Request>& batch, Tensor& gather_staging) {
  const int64_t n = static_cast<int64_t>(batch.size());
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_images_.fetch_add(n, std::memory_order_relaxed);
  batch_size_counts_[static_cast<size_t>(n)].fetch_add(1, std::memory_order_relaxed);
  int64_t seen = max_batch_observed_.load(std::memory_order_relaxed);
  while (n > seen &&
         !max_batch_observed_.compare_exchange_weak(seen, n, std::memory_order_relaxed)) {
  }

  std::vector<Tensor> outputs(static_cast<size_t>(n));
  const auto fail_batch = [&](const char* error) {
    failed_.fetch_add(n, std::memory_order_relaxed);
    for (Request& request : batch)
      complete(request, {ServeStatus::kError, Tensor(), error});
  };
  try {
    if (n == 1) {
      // Nothing to coalesce: dispatch the request tensor directly.
      outputs[0] = upscaler_->upscale(batch[0].input);
    } else {
      // Gather the coalesced [n, C, H, W] batch into the worker's staging
      // tensor (every element is overwritten, so reuse is safe). Each
      // normalized input is a contiguous [1, C, H, W] block: n flat copies.
      const Shape& single = batch[0].input.shape();
      const Shape batched{n, single[1], single[2], single[3]};
      if (gather_staging.shape() != batched) gather_staging = Tensor(batched);
      const int64_t stride = single.numel();
      for (int64_t i = 0; i < n; ++i)
        std::copy(batch[static_cast<size_t>(i)].input.data(),
                  batch[static_cast<size_t>(i)].input.data() + stride,
                  gather_staging.data() + i * stride);
      upscaler_->upscale_batch(gather_staging, outputs);
    }
  } catch (const std::exception& e) {
    fail_batch(e.what());
    return;
  } catch (...) {
    // The upscaler is a virtual seam: even a non-std exception must become
    // an error reply, not a std::terminate of the worker thread.
    fail_batch("upscaler threw a non-standard exception");
    return;
  }

  const Clock::time_point done = Clock::now();
  for (int64_t i = 0; i < n; ++i) {
    Request& request = batch[static_cast<size_t>(i)];
    latency_.record_us(
        std::chrono::duration_cast<std::chrono::microseconds>(done - request.enqueued).count());
    completed_.fetch_add(1, std::memory_order_relaxed);
    complete(request, {ServeStatus::kOk, std::move(outputs[static_cast<size_t>(i)]), ""});
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_images = batched_images_.load(std::memory_order_relaxed);
  stats.mean_batch_size =
      stats.batches > 0
          ? static_cast<double>(stats.batched_images) / static_cast<double>(stats.batches)
          : 0.0;
  stats.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  stats.batch_size_counts.reserve(batch_size_counts_.size());
  for (const std::atomic<int64_t>& count : batch_size_counts_)
    stats.batch_size_counts.push_back(count.load(std::memory_order_relaxed));
  stats.queue_depth = queue_->size();
  stats.peak_queue_depth = queue_->peak_size();
  stats.latency = latency_.snapshot();
  return stats;
}

}  // namespace sesr::serve
