#include "serve/server.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/profile.h"
#include "runtime/passes/passes.h"
#include "tensor/simd/dispatch.h"

namespace sesr::serve {

using Clock = std::chrono::steady_clock;

/// Mutable per-tenant admission state. Stable address for the server's
/// lifetime (requests carry the pointer through the queue); every counter is
/// a labeled registry instrument, so per-tenant numbers ride along in
/// metrics()/fleet merges for free.
struct Server::TenantState {
  TenantQuota quota;
  obs::Gauge& in_queue;
  obs::Gauge& peak_in_queue;
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& rejected;
  obs::Counter& shed;
  obs::Counter& failed;

  TenantState(obs::Registry& metrics, const std::string& id)
      : in_queue(metrics.gauge("serve.tenant.in_queue|tenant=" + id)),
        peak_in_queue(metrics.gauge("serve.tenant.peak_in_queue|tenant=" + id)),
        submitted(metrics.counter("serve.tenant.submitted|tenant=" + id)),
        completed(metrics.counter("serve.tenant.completed|tenant=" + id)),
        rejected(metrics.counter("serve.tenant.rejected|tenant=" + id)),
        shed(metrics.counter("serve.tenant.shed|tenant=" + id)),
        failed(metrics.counter("serve.tenant.failed|tenant=" + id)) {}
};

/// One admitted request, queued until a worker dispatches (or sheds) it.
/// Carries the model *id*, not a snapshot: the worker resolves the id at
/// dispatch time so hot-swaps apply to queued work immediately.
struct Server::Request {
  Tensor input;  ///< normalized to [1, C, H, W]
  std::string model;
  TenantState* tenant = nullptr;
  std::shared_ptr<detail::ResultState> state;
  Clock::time_point enqueued;
  Clock::time_point deadline;  ///< time_point::max() = none
  /// Trace identity: trace.span_id is this request's root span ("server_
  /// request", recorded when the reply lands), parent_span the caller's span
  /// it nests under. trace_id 0 = untraced, and every span call short-circuits.
  obs::TraceContext trace;
  uint64_t parent_span = 0;
  int64_t accepted_ns = 0;  ///< trace clock at admission (root span start)
};

Server::Server(std::shared_ptr<ModelRegistry> registry, const Options& options)
    : registry_(std::move(registry)), options_(options) {
  if (!registry_) throw std::invalid_argument("Server: null registry");
  if (options_.workers < 1) throw std::invalid_argument("Server: workers must be >= 1");
  if (options_.max_batch < 1) throw std::invalid_argument("Server: max_batch must be >= 1");
  batch_size_counts_.reserve(static_cast<size_t>(options_.max_batch) + 1);
  for (int64_t k = 0; k <= options_.max_batch; ++k)
    batch_size_counts_.push_back(&metrics_.counter("serve.batch_size|n=" + std::to_string(k)));
  queue_ = std::make_unique<BoundedQueue<Request>>(options_.queue_capacity);
  workers_.reserve(static_cast<size_t>(options_.workers));
  try {
    for (int i = 0; i < options_.workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // A failed spawn (e.g. EAGAIN on a thread-limited host) must unwind the
    // workers already running, or their joinable destructors terminate.
    queue_->close();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

namespace {

std::shared_ptr<ModelRegistry> wrap_in_registry(std::shared_ptr<models::Upscaler> upscaler) {
  if (!upscaler) throw std::invalid_argument("Server: null upscaler");
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_upscaler(kDefaultModel, std::move(upscaler));
  return registry;
}

}  // namespace

Server::Server(std::shared_ptr<models::Upscaler> upscaler, const Options& options)
    : Server(wrap_in_registry(std::move(upscaler)), options) {}

Server::~Server() { stop(); }

void Server::stop() {
  std::call_once(stop_once_, [&] {
    queue_->close();  // workers drain what was admitted, then exit
    for (std::thread& worker : workers_) worker.join();
  });
}

namespace {

/// Accept [C, H, W] or [1, C, H, W]; hand back the batchable [1, C, H, W]
/// form (pure metadata change — the storage moves through).
Tensor normalize_single_image(Tensor image) {
  const Shape& shape = image.shape();
  if (shape.ndim() == 3) return std::move(image).reshaped({1, shape[0], shape[1], shape[2]});
  if (shape.ndim() == 4 && shape[0] == 1) return image;
  throw std::invalid_argument("Server: expected a single [C, H, W] or [1, C, H, W] image, got " +
                              shape.to_string());
}

Clock::time_point deadline_for(std::chrono::milliseconds requested,
                               std::chrono::milliseconds tenant_fallback,
                               std::chrono::milliseconds server_fallback) {
  std::chrono::milliseconds effective = requested;
  if (effective.count() <= 0) effective = tenant_fallback;
  if (effective.count() <= 0) effective = server_fallback;
  if (effective.count() <= 0) return Clock::time_point::max();
  return Clock::now() + effective;
}

/// Plan keys ("[8, 3, 64, 64]|avx2") become metric label values, but commas
/// separate label pairs and '|' separates the name from its labels — fold
/// the punctuation to a compact "8x3x64x64@avx2" form.
std::string pool_label(const std::string& plan_key) {
  std::string out;
  out.reserve(plan_key.size());
  for (const char c : plan_key) {
    if (c == '[' || c == ']' || c == ' ') continue;
    if (c == ',')
      out += 'x';
    else if (c == '|')
      out += '@';
    else
      out += c;
  }
  return out;
}

}  // namespace

Server::TenantState& Server::tenant_for(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto [it, inserted] = tenants_.emplace(tenant, nullptr);
  if (inserted) {
    it->second = std::make_unique<TenantState>(metrics_, tenant);
    const auto quota = options_.tenant_quotas.find(tenant);
    if (quota != options_.tenant_quotas.end()) it->second->quota = quota->second;
  }
  return *it->second;
}

bool Server::charge_tenant(TenantState& tenant) {
  const int64_t occupancy = tenant.in_queue.add(1);
  if (tenant.quota.max_in_queue > 0 && occupancy > tenant.quota.max_in_queue) {
    tenant.in_queue.add(-1);
    return false;
  }
  tenant.peak_in_queue.set_max(occupancy);
  return true;
}

Server::Request Server::make_request(Tensor image, const SubmitOptions& submit_options) {
  // Model ids are validated at the door (entries are never removed, so an id
  // that resolves here still resolves at dispatch). An unknown id is a
  // caller bug, not a load condition: throw, don't count a rejection.
  if (!registry_->contains(submit_options.model))
    throw std::invalid_argument("Server: unknown model id: " + submit_options.model);
  TenantState& tenant = tenant_for(submit_options.tenant);
  Request request{normalize_single_image(std::move(image)),
                  submit_options.model,
                  &tenant,
                  std::make_shared<detail::ResultState>(),
                  Clock::now(),
                  deadline_for(submit_options.deadline, tenant.quota.default_deadline,
                               options_.default_deadline),
                  submit_options.trace,
                  0,
                  0};
  // Adopt the caller's trace (e.g. decoded off the shard wire) or mint a
  // fresh root when tracing is on; either way this request's own root span id
  // is allocated now so queue/batch spans can parent to it immediately.
  if (!request.trace && obs::trace_enabled()) request.trace = obs::start_trace();
  if (request.trace) {
    request.parent_span = request.trace.span_id;
    request.trace.span_id = obs::next_span_id();
    request.accepted_ns = obs::trace_now_ns();
  }
  return request;
}

void Server::complete(Request& request, ServeReply reply) {
  detail::complete_result(*request.state, std::move(reply));
}

ServeFuture Server::submit(Tensor image, std::chrono::milliseconds deadline) {
  return submit(std::move(image), SubmitOptions{.deadline = deadline});
}

ServeFuture Server::submit(Tensor image, const SubmitOptions& submit_options) {
  Request request = make_request(std::move(image), submit_options);
  std::shared_ptr<detail::ResultState> state = request.state;
  ServeFuture future = detail_make_future(state);
  if (!charge_tenant(*request.tenant)) {
    rejected_.inc();
    request.tenant->rejected.inc();
    complete(request, {ServeStatus::kError, Tensor(), "tenant over quota", 0});
    return future;
  }
  TenantState& tenant = *request.tenant;
  if (!queue_->push(std::move(request))) {
    // Stopped: fail fast instead of leaving the future forever pending.
    tenant.in_queue.add(-1);
    Request dead{Tensor(), "", nullptr, std::move(state), Clock::now(), Clock::time_point::max(),
                 {},       0,  0};
    complete(dead, {ServeStatus::kError, Tensor(), "server stopped", 0});
    return future;
  }
  submitted_.inc();
  tenant.submitted.inc();
  return future;
}

void Server::submit_async(Tensor image, ServeCallback callback,
                          std::chrono::milliseconds deadline) {
  submit_async(std::move(image), SubmitOptions{.deadline = deadline}, std::move(callback));
}

void Server::submit_async(Tensor image, const SubmitOptions& submit_options,
                          ServeCallback callback) {
  if (!callback) throw std::invalid_argument("Server::submit_async: null callback");
  Request request = make_request(std::move(image), submit_options);
  request.state->callback = std::move(callback);
  if (!charge_tenant(*request.tenant)) {
    rejected_.inc();
    request.tenant->rejected.inc();
    complete(request, {ServeStatus::kError, Tensor(), "tenant over quota", 0});
    return;
  }
  TenantState& tenant = *request.tenant;
  auto state = request.state;
  if (!queue_->push(std::move(request))) {
    tenant.in_queue.add(-1);
    Request dead{Tensor(), "", nullptr, std::move(state), Clock::now(), Clock::time_point::max(),
                 {},       0,  0};
    complete(dead, {ServeStatus::kError, Tensor(), "server stopped", 0});
    return;
  }
  submitted_.inc();
  tenant.submitted.inc();
}

bool Server::try_submit(Tensor image, ServeCallback callback,
                        std::chrono::milliseconds deadline) {
  return try_submit(std::move(image), SubmitOptions{.deadline = deadline}, std::move(callback));
}

bool Server::try_submit(Tensor image, const SubmitOptions& submit_options,
                        ServeCallback callback) {
  if (!callback) throw std::invalid_argument("Server::try_submit: null callback");
  Request request = make_request(std::move(image), submit_options);
  request.state->callback = std::move(callback);
  TenantState& tenant = *request.tenant;
  if (!charge_tenant(tenant)) {
    rejected_.inc();
    tenant.rejected.inc();
    return false;
  }
  if (!queue_->try_push(std::move(request))) {
    tenant.in_queue.add(-1);
    rejected_.inc();
    tenant.rejected.inc();
    return false;
  }
  submitted_.inc();
  tenant.submitted.inc();
  return true;
}

void Server::warmup(const Shape& single_image_chw) { warmup(kDefaultModel, single_image_chw); }

void Server::warmup(const std::string& model, const Shape& single_image_chw) {
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->acquire(model);
  if (snapshot->network == nullptr) return;  // e.g. interpolation: nothing to precompile
  if (single_image_chw.ndim() != 3)
    throw std::invalid_argument("Server::warmup: expected a [C, H, W] shape, got " +
                                single_image_chw.to_string());
  // Every batch size a worker can dispatch is its own compiled shape; one
  // pooled session per shape per worker covers the worst concurrent case.
  for (int64_t batch = 1; batch <= options_.max_batch; ++batch)
    snapshot->network->warmup(
        {batch, single_image_chw[0], single_image_chw[1], single_image_chw[2]},
        options_.workers);
}

void Server::worker_loop() {
  std::vector<Request> batch;
  std::vector<Request> live;
  Tensor gather_staging;  // reused across dispatches (resized on shape change)
  const auto compatible = [](const Request& candidate, const Request& first) {
    // A batch is one model and one compiled shape: coalescing across either
    // would need per-image routing inside a single dispatch.
    return candidate.model == first.model && candidate.input.shape() == first.input.shape();
  };
  for (;;) {
    batch.clear();
    if (!queue_->pop_batch(batch, options_.max_batch, compatible, options_.batch_linger))
      return;  // stopped and drained

    // Popping releases each request's tenant occupancy: the quota bounds
    // queued work, and shed/failed outcomes must not leak charges. A traced
    // request's time-in-queue becomes its first child span.
    for (const Request& request : batch) {
      request.tenant->in_queue.add(-1);
      if (request.trace)
        obs::record_span(request.trace.trace_id, obs::next_span_id(), request.trace.span_id,
                         "queue_wait", request.accepted_ns, obs::trace_now_ns());
    }

    // Fault seam: a seeded schedule can stall this worker here, modelling a
    // descheduled thread — queues fill and deadlines expire behind it.
    if (options_.fault_plan) {
      const std::chrono::microseconds stall = options_.fault_plan->worker_stall(
          dispatch_index_.fetch_add(1, std::memory_order_relaxed));
      if (stall.count() > 0) std::this_thread::sleep_for(stall);
    }

    // Deadline-based load shedding: answers nobody is waiting for anymore
    // are dropped before they can waste a dispatch. A shed traced request
    // still closes its root span — the trace shows the drop, not a hole.
    const Clock::time_point now = Clock::now();
    live.clear();
    for (Request& request : batch) {
      if (request.deadline < now) {
        shed_.inc();
        request.tenant->shed.inc();
        // Root span first, reply second: complete() is the wire write on a
        // shard, and the caller's rpc span must outlive this window.
        if (request.trace)
          obs::record_span(request.trace.trace_id, request.trace.span_id, request.parent_span,
                           "server_request", request.accepted_ns, obs::trace_now_ns());
        complete(request, {ServeStatus::kShed, Tensor(), "deadline expired in queue", 0});
      } else {
        live.push_back(std::move(request));
      }
    }
    if (live.empty()) continue;
    dispatch(live, gather_staging);
  }
}

void Server::dispatch(std::vector<Request>& batch, Tensor& gather_staging) {
  const int64_t n = static_cast<int64_t>(batch.size());
  batches_.inc();
  batched_images_.add(n);
  batch_size_counts_[static_cast<size_t>(n)]->inc();
  max_batch_observed_.set_max(n);

  // Batch-level spans (formation, the compiled run, reply delivery) parent
  // to the first traced request's root; a batch with no traced member pays
  // one pointer scan and records nothing.
  const Request* traced = nullptr;
  for (const Request& request : batch)
    if (request.trace) {
      traced = &request;
      break;
    }
  const uint64_t batch_trace = traced != nullptr ? traced->trace.trace_id : 0;
  const uint64_t batch_parent = traced != nullptr ? traced->trace.span_id : 0;
  const int64_t t_form = batch_trace != 0 ? obs::trace_now_ns() : 0;

  std::vector<Tensor> outputs(static_cast<size_t>(n));
  int64_t served_version = 0;
  const auto fail_batch = [&](const char* error) {
    failed_.add(n);
    const int64_t t_end = batch_trace != 0 ? obs::trace_now_ns() : 0;
    for (Request& request : batch) {
      request.tenant->failed.inc();
      // Root closes before the reply leaves: on a shard, complete() is the
      // wire write, and the frontend's rpc span must still be open when this
      // window ends for cross-process nesting to hold.
      if (request.trace)
        obs::record_span(request.trace.trace_id, request.trace.span_id, request.parent_span,
                         "server_request", request.accepted_ns, t_end);
      complete(request, {ServeStatus::kError, Tensor(), error, served_version});
    }
  };
  try {
    // RCU read side: resolve the batch's model id to the current snapshot.
    // Holding the shared_ptr is the grace period — a concurrent publish()
    // cannot invalidate this dispatch, and the version we stamp into the
    // replies is exactly the artifact that computed them.
    const std::shared_ptr<const ModelSnapshot> snapshot = registry_->acquire(batch[0].model);
    served_version = snapshot->version;
    int64_t t_run = 0;
    if (n == 1) {
      // Nothing to coalesce: dispatch the request tensor directly.
      t_run = batch_trace != 0 ? obs::trace_now_ns() : 0;
      outputs[0] = snapshot->upscaler->upscale(batch[0].input);
    } else {
      // Gather the coalesced [n, C, H, W] batch into the worker's staging
      // tensor (every element is overwritten, so reuse is safe). Each
      // normalized input is a contiguous [1, C, H, W] block: n flat copies.
      const Shape& single = batch[0].input.shape();
      const Shape batched{n, single[1], single[2], single[3]};
      if (gather_staging.shape() != batched) gather_staging = Tensor(batched);
      const int64_t stride = single.numel();
      for (int64_t i = 0; i < n; ++i)
        std::copy(batch[static_cast<size_t>(i)].input.data(),
                  batch[static_cast<size_t>(i)].input.data() + stride,
                  gather_staging.data() + i * stride);
      t_run = batch_trace != 0 ? obs::trace_now_ns() : 0;
      snapshot->upscaler->upscale_batch(gather_staging, outputs);
    }
    if (batch_trace != 0) {
      obs::record_span(batch_trace, obs::next_span_id(), batch_parent, "batch_form", t_form,
                       t_run);
      obs::record_span(batch_trace, obs::next_span_id(), batch_parent, "session_run", t_run,
                       obs::trace_now_ns());
    }
  } catch (const std::exception& e) {
    fail_batch(e.what());
    return;
  } catch (...) {
    // The upscaler is a virtual seam: even a non-std exception must become
    // an error reply, not a std::terminate of the worker thread.
    fail_batch("upscaler threw a non-standard exception");
    return;
  }

  const int64_t t_reply = batch_trace != 0 ? obs::trace_now_ns() : 0;
  const Clock::time_point done = Clock::now();
  if (batch_trace != 0) {
    // Every traced root ends at the same instant, *before* the replies are
    // delivered: on a shard, complete() below is the wire write, and the
    // frontend closes its rpc span the moment those bytes arrive — these
    // windows must already be shut for cross-process nesting to hold. The
    // "reply" child covers reply assembly; the delivery itself is timed by
    // the caller's rpc span.
    const int64_t t_end = obs::trace_now_ns();
    obs::record_span(batch_trace, obs::next_span_id(), batch_parent, "reply", t_reply, t_end);
    for (const Request& request : batch)
      if (request.trace)
        obs::record_span(request.trace.trace_id, request.trace.span_id, request.parent_span,
                         "server_request", request.accepted_ns, t_end);
  }
  for (int64_t i = 0; i < n; ++i) {
    Request& request = batch[static_cast<size_t>(i)];
    latency_.record_us(
        std::chrono::duration_cast<std::chrono::microseconds>(done - request.enqueued).count());
    completed_.inc();
    request.tenant->completed.inc();
    complete(request,
             {ServeStatus::kOk, std::move(outputs[static_cast<size_t>(i)]), "", served_version});
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.submitted = submitted_.value();
  stats.completed = completed_.value();
  stats.shed = shed_.value();
  stats.rejected = rejected_.value();
  stats.failed = failed_.value();
  stats.batches = batches_.value();
  stats.batched_images = batched_images_.value();
  stats.mean_batch_size =
      stats.batches > 0
          ? static_cast<double>(stats.batched_images) / static_cast<double>(stats.batches)
          : 0.0;
  stats.max_batch_observed = max_batch_observed_.value();
  stats.batch_size_counts.reserve(batch_size_counts_.size());
  for (const obs::Counter* count : batch_size_counts_)
    stats.batch_size_counts.push_back(count->value());
  stats.queue_depth = queue_->size();
  stats.peak_queue_depth = queue_->peak_size();
  // The tier plans compiled now are stamped with — "jit" when the
  // copy-and-patch tier is selected and available, not the base tier
  // active_variant() would clamp it to.
  stats.kernel_variant = simd::variant_name(runtime::resolved_kernel_variant());
  stats.latency = latency_.snapshot();
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    for (const auto& [name, tenant] : tenants_) {
      TenantStats& out = stats.tenants[name];
      out.submitted = tenant->submitted.value();
      out.completed = tenant->completed.value();
      out.rejected = tenant->rejected.value();
      out.shed = tenant->shed.value();
      out.failed = tenant->failed.value();
      out.in_queue = tenant->in_queue.value();
      out.peak_in_queue = tenant->peak_in_queue.value();
    }
  }
  for (const std::string& id : registry_->model_ids()) {
    const std::shared_ptr<const ModelSnapshot> snapshot = registry_->acquire(id);
    ModelStats& out = stats.models[id];
    out.version = snapshot->version;
    if (snapshot->network == nullptr) continue;  // interpolation: no plans, no pools
    out.plan_compiles = snapshot->network->plan_compile_count();
    out.plan_cache_hits = snapshot->network->plan_cache_hit_count();
    for (const models::NetworkUpscaler::PoolOccupancy& pool : snapshot->network->pool_occupancy())
      out.session_pools.push_back({pool.plan_key, pool.idle, pool.live, pool.peak});
  }
  return stats;
}

obs::RegistrySnapshot Server::metrics() const {
  // Point-in-time levels the instruments cannot track incrementally are
  // refreshed (set, not added — snapshotting twice must be idempotent) just
  // before the copy-out.
  metrics_.gauge("serve.queue_depth").set(queue_->size());
  metrics_.gauge("serve.peak_queue_depth").set(queue_->peak_size());
  for (const std::string& id : registry_->model_ids()) {
    const std::shared_ptr<const ModelSnapshot> snapshot = registry_->acquire(id);
    metrics_.gauge("model.version|model=" + id).set(snapshot->version);
    if (snapshot->network == nullptr) continue;
    metrics_.gauge("model.plan_compiles|model=" + id)
        .set(snapshot->network->plan_compile_count());
    metrics_.gauge("model.plan_cache_hits|model=" + id)
        .set(snapshot->network->plan_cache_hit_count());
    for (const models::NetworkUpscaler::PoolOccupancy& pool :
         snapshot->network->pool_occupancy()) {
      const std::string labels = "|model=" + id + ",pool=" + pool_label(pool.plan_key);
      metrics_.gauge("model.pool_idle" + labels).set(pool.idle);
      metrics_.gauge("model.pool_live" + labels).set(pool.live);
      metrics_.gauge("model.pool_peak" + labels).set(pool.peak);
    }
  }
  // Fold in the process-global registry: per-op profiler aggregates and any
  // process-level instruments other components registered.
  obs::profile_export(obs::default_registry());
  obs::RegistrySnapshot snapshot = metrics_.snapshot();
  snapshot.merge(obs::default_registry().snapshot());
  return snapshot;
}

std::string Server::metrics_json() const { return metrics().to_json(); }

std::string Server::metrics_prometheus() const { return metrics().to_prometheus(); }

}  // namespace sesr::serve
