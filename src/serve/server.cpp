#include "serve/server.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "runtime/passes/passes.h"
#include "tensor/simd/dispatch.h"

namespace sesr::serve {

using Clock = std::chrono::steady_clock;

/// Mutable per-tenant admission state. Stable address for the server's
/// lifetime (requests carry the pointer through the queue); counters are
/// relaxed atomics read by stats().
struct Server::TenantState {
  TenantQuota quota;
  std::atomic<int64_t> in_queue{0};
  std::atomic<int64_t> peak_in_queue{0};
  std::atomic<int64_t> submitted{0};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> failed{0};
};

/// One admitted request, queued until a worker dispatches (or sheds) it.
/// Carries the model *id*, not a snapshot: the worker resolves the id at
/// dispatch time so hot-swaps apply to queued work immediately.
struct Server::Request {
  Tensor input;  ///< normalized to [1, C, H, W]
  std::string model;
  TenantState* tenant = nullptr;
  std::shared_ptr<detail::ResultState> state;
  Clock::time_point enqueued;
  Clock::time_point deadline;  ///< time_point::max() = none
};

Server::Server(std::shared_ptr<ModelRegistry> registry, const Options& options)
    : registry_(std::move(registry)),
      options_(options),
      batch_size_counts_(static_cast<size_t>(std::max<int64_t>(options.max_batch, 1)) + 1) {
  if (!registry_) throw std::invalid_argument("Server: null registry");
  if (options_.workers < 1) throw std::invalid_argument("Server: workers must be >= 1");
  if (options_.max_batch < 1) throw std::invalid_argument("Server: max_batch must be >= 1");
  queue_ = std::make_unique<BoundedQueue<Request>>(options_.queue_capacity);
  workers_.reserve(static_cast<size_t>(options_.workers));
  try {
    for (int i = 0; i < options_.workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // A failed spawn (e.g. EAGAIN on a thread-limited host) must unwind the
    // workers already running, or their joinable destructors terminate.
    queue_->close();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

namespace {

std::shared_ptr<ModelRegistry> wrap_in_registry(std::shared_ptr<models::Upscaler> upscaler) {
  if (!upscaler) throw std::invalid_argument("Server: null upscaler");
  auto registry = std::make_shared<ModelRegistry>();
  registry->register_upscaler(kDefaultModel, std::move(upscaler));
  return registry;
}

}  // namespace

Server::Server(std::shared_ptr<models::Upscaler> upscaler, const Options& options)
    : Server(wrap_in_registry(std::move(upscaler)), options) {}

Server::~Server() { stop(); }

void Server::stop() {
  std::call_once(stop_once_, [&] {
    queue_->close();  // workers drain what was admitted, then exit
    for (std::thread& worker : workers_) worker.join();
  });
}

namespace {

/// Accept [C, H, W] or [1, C, H, W]; hand back the batchable [1, C, H, W]
/// form (pure metadata change — the storage moves through).
Tensor normalize_single_image(Tensor image) {
  const Shape& shape = image.shape();
  if (shape.ndim() == 3) return std::move(image).reshaped({1, shape[0], shape[1], shape[2]});
  if (shape.ndim() == 4 && shape[0] == 1) return image;
  throw std::invalid_argument("Server: expected a single [C, H, W] or [1, C, H, W] image, got " +
                              shape.to_string());
}

Clock::time_point deadline_for(std::chrono::milliseconds requested,
                               std::chrono::milliseconds tenant_fallback,
                               std::chrono::milliseconds server_fallback) {
  std::chrono::milliseconds effective = requested;
  if (effective.count() <= 0) effective = tenant_fallback;
  if (effective.count() <= 0) effective = server_fallback;
  if (effective.count() <= 0) return Clock::time_point::max();
  return Clock::now() + effective;
}

}  // namespace

Server::TenantState& Server::tenant_for(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto [it, inserted] = tenants_.emplace(tenant, nullptr);
  if (inserted) {
    it->second = std::make_unique<TenantState>();
    const auto quota = options_.tenant_quotas.find(tenant);
    if (quota != options_.tenant_quotas.end()) it->second->quota = quota->second;
  }
  return *it->second;
}

bool Server::charge_tenant(TenantState& tenant) {
  const int64_t occupancy = tenant.in_queue.fetch_add(1, std::memory_order_relaxed) + 1;
  if (tenant.quota.max_in_queue > 0 && occupancy > tenant.quota.max_in_queue) {
    tenant.in_queue.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  int64_t peak = tenant.peak_in_queue.load(std::memory_order_relaxed);
  while (occupancy > peak &&
         !tenant.peak_in_queue.compare_exchange_weak(peak, occupancy,
                                                     std::memory_order_relaxed)) {
  }
  return true;
}

Server::Request Server::make_request(Tensor image, const SubmitOptions& submit_options) {
  // Model ids are validated at the door (entries are never removed, so an id
  // that resolves here still resolves at dispatch). An unknown id is a
  // caller bug, not a load condition: throw, don't count a rejection.
  if (!registry_->contains(submit_options.model))
    throw std::invalid_argument("Server: unknown model id: " + submit_options.model);
  TenantState& tenant = tenant_for(submit_options.tenant);
  return Request{normalize_single_image(std::move(image)),
                 submit_options.model,
                 &tenant,
                 std::make_shared<detail::ResultState>(),
                 Clock::now(),
                 deadline_for(submit_options.deadline, tenant.quota.default_deadline,
                              options_.default_deadline)};
}

void Server::complete(Request& request, ServeReply reply) {
  detail::complete_result(*request.state, std::move(reply));
}

ServeFuture Server::submit(Tensor image, std::chrono::milliseconds deadline) {
  return submit(std::move(image), SubmitOptions{.deadline = deadline});
}

ServeFuture Server::submit(Tensor image, const SubmitOptions& submit_options) {
  Request request = make_request(std::move(image), submit_options);
  std::shared_ptr<detail::ResultState> state = request.state;
  ServeFuture future = detail_make_future(state);
  if (!charge_tenant(*request.tenant)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    request.tenant->rejected.fetch_add(1, std::memory_order_relaxed);
    complete(request, {ServeStatus::kError, Tensor(), "tenant over quota", 0});
    return future;
  }
  TenantState& tenant = *request.tenant;
  if (!queue_->push(std::move(request))) {
    // Stopped: fail fast instead of leaving the future forever pending.
    tenant.in_queue.fetch_sub(1, std::memory_order_relaxed);
    Request dead{Tensor(), "", nullptr, std::move(state), Clock::now(), Clock::time_point::max()};
    complete(dead, {ServeStatus::kError, Tensor(), "server stopped", 0});
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  tenant.submitted.fetch_add(1, std::memory_order_relaxed);
  return future;
}

void Server::submit_async(Tensor image, ServeCallback callback,
                          std::chrono::milliseconds deadline) {
  submit_async(std::move(image), SubmitOptions{.deadline = deadline}, std::move(callback));
}

void Server::submit_async(Tensor image, const SubmitOptions& submit_options,
                          ServeCallback callback) {
  if (!callback) throw std::invalid_argument("Server::submit_async: null callback");
  Request request = make_request(std::move(image), submit_options);
  request.state->callback = std::move(callback);
  if (!charge_tenant(*request.tenant)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    request.tenant->rejected.fetch_add(1, std::memory_order_relaxed);
    complete(request, {ServeStatus::kError, Tensor(), "tenant over quota", 0});
    return;
  }
  TenantState& tenant = *request.tenant;
  auto state = request.state;
  if (!queue_->push(std::move(request))) {
    tenant.in_queue.fetch_sub(1, std::memory_order_relaxed);
    Request dead{Tensor(), "", nullptr, std::move(state), Clock::now(), Clock::time_point::max()};
    complete(dead, {ServeStatus::kError, Tensor(), "server stopped", 0});
    return;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  tenant.submitted.fetch_add(1, std::memory_order_relaxed);
}

bool Server::try_submit(Tensor image, ServeCallback callback,
                        std::chrono::milliseconds deadline) {
  return try_submit(std::move(image), SubmitOptions{.deadline = deadline}, std::move(callback));
}

bool Server::try_submit(Tensor image, const SubmitOptions& submit_options,
                        ServeCallback callback) {
  if (!callback) throw std::invalid_argument("Server::try_submit: null callback");
  Request request = make_request(std::move(image), submit_options);
  request.state->callback = std::move(callback);
  TenantState& tenant = *request.tenant;
  if (!charge_tenant(tenant)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    tenant.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!queue_->try_push(std::move(request))) {
    tenant.in_queue.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    tenant.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  tenant.submitted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Server::warmup(const Shape& single_image_chw) { warmup(kDefaultModel, single_image_chw); }

void Server::warmup(const std::string& model, const Shape& single_image_chw) {
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_->acquire(model);
  if (snapshot->network == nullptr) return;  // e.g. interpolation: nothing to precompile
  if (single_image_chw.ndim() != 3)
    throw std::invalid_argument("Server::warmup: expected a [C, H, W] shape, got " +
                                single_image_chw.to_string());
  // Every batch size a worker can dispatch is its own compiled shape; one
  // pooled session per shape per worker covers the worst concurrent case.
  for (int64_t batch = 1; batch <= options_.max_batch; ++batch)
    snapshot->network->warmup(
        {batch, single_image_chw[0], single_image_chw[1], single_image_chw[2]},
        options_.workers);
}

void Server::worker_loop() {
  std::vector<Request> batch;
  std::vector<Request> live;
  Tensor gather_staging;  // reused across dispatches (resized on shape change)
  const auto compatible = [](const Request& candidate, const Request& first) {
    // A batch is one model and one compiled shape: coalescing across either
    // would need per-image routing inside a single dispatch.
    return candidate.model == first.model && candidate.input.shape() == first.input.shape();
  };
  for (;;) {
    batch.clear();
    if (!queue_->pop_batch(batch, options_.max_batch, compatible, options_.batch_linger))
      return;  // stopped and drained

    // Popping releases each request's tenant occupancy: the quota bounds
    // queued work, and shed/failed outcomes must not leak charges.
    for (const Request& request : batch)
      request.tenant->in_queue.fetch_sub(1, std::memory_order_relaxed);

    // Fault seam: a seeded schedule can stall this worker here, modelling a
    // descheduled thread — queues fill and deadlines expire behind it.
    if (options_.fault_plan) {
      const std::chrono::microseconds stall = options_.fault_plan->worker_stall(
          dispatch_index_.fetch_add(1, std::memory_order_relaxed));
      if (stall.count() > 0) std::this_thread::sleep_for(stall);
    }

    // Deadline-based load shedding: answers nobody is waiting for anymore
    // are dropped before they can waste a dispatch.
    const Clock::time_point now = Clock::now();
    live.clear();
    for (Request& request : batch) {
      if (request.deadline < now) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        request.tenant->shed.fetch_add(1, std::memory_order_relaxed);
        complete(request, {ServeStatus::kShed, Tensor(), "deadline expired in queue", 0});
      } else {
        live.push_back(std::move(request));
      }
    }
    if (live.empty()) continue;
    dispatch(live, gather_staging);
  }
}

void Server::dispatch(std::vector<Request>& batch, Tensor& gather_staging) {
  const int64_t n = static_cast<int64_t>(batch.size());
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_images_.fetch_add(n, std::memory_order_relaxed);
  batch_size_counts_[static_cast<size_t>(n)].fetch_add(1, std::memory_order_relaxed);
  int64_t seen = max_batch_observed_.load(std::memory_order_relaxed);
  while (n > seen &&
         !max_batch_observed_.compare_exchange_weak(seen, n, std::memory_order_relaxed)) {
  }

  std::vector<Tensor> outputs(static_cast<size_t>(n));
  int64_t served_version = 0;
  const auto fail_batch = [&](const char* error) {
    failed_.fetch_add(n, std::memory_order_relaxed);
    for (Request& request : batch) {
      request.tenant->failed.fetch_add(1, std::memory_order_relaxed);
      complete(request, {ServeStatus::kError, Tensor(), error, served_version});
    }
  };
  try {
    // RCU read side: resolve the batch's model id to the current snapshot.
    // Holding the shared_ptr is the grace period — a concurrent publish()
    // cannot invalidate this dispatch, and the version we stamp into the
    // replies is exactly the artifact that computed them.
    const std::shared_ptr<const ModelSnapshot> snapshot = registry_->acquire(batch[0].model);
    served_version = snapshot->version;
    if (n == 1) {
      // Nothing to coalesce: dispatch the request tensor directly.
      outputs[0] = snapshot->upscaler->upscale(batch[0].input);
    } else {
      // Gather the coalesced [n, C, H, W] batch into the worker's staging
      // tensor (every element is overwritten, so reuse is safe). Each
      // normalized input is a contiguous [1, C, H, W] block: n flat copies.
      const Shape& single = batch[0].input.shape();
      const Shape batched{n, single[1], single[2], single[3]};
      if (gather_staging.shape() != batched) gather_staging = Tensor(batched);
      const int64_t stride = single.numel();
      for (int64_t i = 0; i < n; ++i)
        std::copy(batch[static_cast<size_t>(i)].input.data(),
                  batch[static_cast<size_t>(i)].input.data() + stride,
                  gather_staging.data() + i * stride);
      snapshot->upscaler->upscale_batch(gather_staging, outputs);
    }
  } catch (const std::exception& e) {
    fail_batch(e.what());
    return;
  } catch (...) {
    // The upscaler is a virtual seam: even a non-std exception must become
    // an error reply, not a std::terminate of the worker thread.
    fail_batch("upscaler threw a non-standard exception");
    return;
  }

  const Clock::time_point done = Clock::now();
  for (int64_t i = 0; i < n; ++i) {
    Request& request = batch[static_cast<size_t>(i)];
    latency_.record_us(
        std::chrono::duration_cast<std::chrono::microseconds>(done - request.enqueued).count());
    completed_.fetch_add(1, std::memory_order_relaxed);
    request.tenant->completed.fetch_add(1, std::memory_order_relaxed);
    complete(request,
             {ServeStatus::kOk, std::move(outputs[static_cast<size_t>(i)]), "", served_version});
  }
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_images = batched_images_.load(std::memory_order_relaxed);
  stats.mean_batch_size =
      stats.batches > 0
          ? static_cast<double>(stats.batched_images) / static_cast<double>(stats.batches)
          : 0.0;
  stats.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  stats.batch_size_counts.reserve(batch_size_counts_.size());
  for (const std::atomic<int64_t>& count : batch_size_counts_)
    stats.batch_size_counts.push_back(count.load(std::memory_order_relaxed));
  stats.queue_depth = queue_->size();
  stats.peak_queue_depth = queue_->peak_size();
  // The tier plans compiled now are stamped with — "jit" when the
  // copy-and-patch tier is selected and available, not the base tier
  // active_variant() would clamp it to.
  stats.kernel_variant = simd::variant_name(runtime::resolved_kernel_variant());
  stats.latency = latency_.snapshot();
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    for (const auto& [name, tenant] : tenants_) {
      TenantStats& out = stats.tenants[name];
      out.submitted = tenant->submitted.load(std::memory_order_relaxed);
      out.completed = tenant->completed.load(std::memory_order_relaxed);
      out.rejected = tenant->rejected.load(std::memory_order_relaxed);
      out.shed = tenant->shed.load(std::memory_order_relaxed);
      out.failed = tenant->failed.load(std::memory_order_relaxed);
      out.in_queue = tenant->in_queue.load(std::memory_order_relaxed);
      out.peak_in_queue = tenant->peak_in_queue.load(std::memory_order_relaxed);
    }
  }
  return stats;
}

}  // namespace sesr::serve
