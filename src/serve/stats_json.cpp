#include "serve/stats_json.h"

#include <stdexcept>
#include <variant>

#include "core/json.h"

namespace sesr::serve {

namespace {

using core::JsonArray;
using core::JsonObject;
using core::JsonValue;

std::string latency_to_json(const LatencyHistogram::Snapshot& latency) {
  core::JsonObjectWriter out;
  out.field("count", latency.count);
  // Raw mergeable fields: a frontend rebuilds the histogram from these and
  // merges shards exactly (obs::Histogram::Snapshot::merge) instead of
  // averaging derived quantiles, which has no exact combination rule.
  out.field("sum_us", latency.sum_us);
  out.field("max_us", latency.max_us);
  std::string buckets = "[";
  for (size_t i = 0; i < latency.buckets.size(); ++i) {
    if (i > 0) buckets += ", ";
    buckets += '[';
    buckets += core::json_number(static_cast<int64_t>(latency.buckets[i].first));
    buckets += ", ";
    buckets += core::json_number(latency.buckets[i].second);
    buckets += ']';
  }
  buckets += "]";
  out.field("buckets", buckets);
  // Derived summary (recomputed from the raw fields on parse — kept in the
  // document for human readers and pre-buckets consumers).
  out.field("mean_ms", latency.mean_ms);
  out.field("max_ms", latency.max_ms);
  out.field("p50_ms", latency.p50_ms);
  out.field("p95_ms", latency.p95_ms);
  out.field("p99_ms", latency.p99_ms);
  return out.close();
}

LatencyHistogram::Snapshot latency_from_object(const JsonObject& object) {
  LatencyHistogram::Snapshot latency;
  latency.count = core::json_get_int(object, "count");
  if (const auto it = object.find("buckets"); it != object.end()) {
    latency.sum_us = core::json_get_int(object, "sum_us");
    latency.max_us = core::json_get_int(object, "max_us");
    for (const JsonValue& entry : core::json_as_array(it->second, "latency buckets")) {
      const JsonArray& pair = core::json_as_array(entry, "latency bucket entry");
      if (pair.size() != 2)
        throw std::runtime_error("stats_json: latency bucket entry is not a pair");
      latency.buckets.emplace_back(static_cast<int32_t>(core::json_as_number(pair[0], "bucket index")),
                                   static_cast<int64_t>(core::json_as_number(pair[1], "bucket count")));
    }
    latency.finalize();
  } else {
    // Pre-buckets document (older shard): only the derived summary exists.
    latency.mean_ms = core::json_get_number(object, "mean_ms");
    latency.max_ms = core::json_get_number(object, "max_ms");
    latency.p50_ms = core::json_get_number(object, "p50_ms");
    latency.p95_ms = core::json_get_number(object, "p95_ms");
    latency.p99_ms = core::json_get_number(object, "p99_ms");
  }
  return latency;
}

std::string model_to_json(const ModelStats& model) {
  core::JsonObjectWriter out;
  out.field("version", model.version);
  out.field("plan_compiles", model.plan_compiles);
  out.field("plan_cache_hits", model.plan_cache_hits);
  std::string pools = "[";
  for (size_t i = 0; i < model.session_pools.size(); ++i) {
    const PoolStats& pool = model.session_pools[i];
    if (i > 0) pools += ", ";
    core::JsonObjectWriter pool_obj;
    pool_obj.field("plan_key", core::json_quote(pool.plan_key));
    pool_obj.field("idle", pool.idle);
    pool_obj.field("live", pool.live);
    pool_obj.field("peak", pool.peak);
    pools += pool_obj.close();
  }
  pools += "]";
  out.field("session_pools", pools);
  return out.close();
}

ModelStats model_from_object(const JsonObject& object) {
  ModelStats model;
  model.version = core::json_get_int(object, "version");
  model.plan_compiles = core::json_get_int(object, "plan_compiles");
  model.plan_cache_hits = core::json_get_int(object, "plan_cache_hits");
  if (const auto it = object.find("session_pools"); it != object.end()) {
    for (const JsonValue& entry : core::json_as_array(it->second, "session_pools")) {
      const JsonObject& pool = core::json_as_object(entry, "session pool");
      model.session_pools.push_back({core::json_get_string(pool, "plan_key"),
                                     core::json_get_int(pool, "idle"),
                                     core::json_get_int(pool, "live"),
                                     core::json_get_int(pool, "peak")});
    }
  }
  return model;
}

TenantStats tenant_from_object(const JsonObject& object) {
  TenantStats tenant;
  tenant.submitted = core::json_get_int(object, "submitted");
  tenant.completed = core::json_get_int(object, "completed");
  tenant.rejected = core::json_get_int(object, "rejected");
  tenant.shed = core::json_get_int(object, "shed");
  tenant.failed = core::json_get_int(object, "failed");
  tenant.in_queue = core::json_get_int(object, "in_queue");
  tenant.peak_in_queue = core::json_get_int(object, "peak_in_queue");
  return tenant;
}

}  // namespace

std::string stats_to_json(const TenantStats& stats) {
  core::JsonObjectWriter out;
  out.field("submitted", stats.submitted);
  out.field("completed", stats.completed);
  out.field("rejected", stats.rejected);
  out.field("shed", stats.shed);
  out.field("failed", stats.failed);
  out.field("in_queue", stats.in_queue);
  out.field("peak_in_queue", stats.peak_in_queue);
  return out.close();
}

std::string stats_to_json(const ServerStats& stats) {
  core::JsonObjectWriter out;
  out.field("submitted", stats.submitted);
  out.field("completed", stats.completed);
  out.field("shed", stats.shed);
  out.field("rejected", stats.rejected);
  out.field("failed", stats.failed);
  out.field("batches", stats.batches);
  out.field("batched_images", stats.batched_images);
  out.field("mean_batch_size", stats.mean_batch_size);
  out.field("max_batch_observed", stats.max_batch_observed);

  std::string counts = "[";
  for (size_t i = 0; i < stats.batch_size_counts.size(); ++i) {
    if (i > 0) counts += ", ";
    counts += core::json_number(stats.batch_size_counts[i]);
  }
  counts += "]";
  out.field("batch_size_counts", counts);

  out.field("queue_depth", stats.queue_depth);
  out.field("peak_queue_depth", stats.peak_queue_depth);
  out.field("kernel_variant", core::json_quote(stats.kernel_variant));
  out.field("latency", latency_to_json(stats.latency));

  std::string tenants = "{";
  bool first = true;
  for (const auto& [id, tenant] : stats.tenants) {
    if (!first) tenants += ", ";
    first = false;
    tenants += core::json_quote(id) + ": " + stats_to_json(tenant);
  }
  tenants += "}";
  out.field("tenants", tenants);

  std::string models = "{";
  first = true;
  for (const auto& [id, model] : stats.models) {
    if (!first) models += ", ";
    first = false;
    models += core::json_quote(id) + ": " + model_to_json(model);
  }
  models += "}";
  out.field("models", models);
  return out.close();
}

TenantStats tenant_stats_from_json(const std::string& json) {
  const JsonValue document = core::json_parse(json);
  return tenant_from_object(core::json_as_object(document, "document"));
}

ServerStats server_stats_from_json(const std::string& json) {
  const JsonValue document = core::json_parse(json);
  const JsonObject& object = core::json_as_object(document, "document");

  ServerStats stats;
  stats.submitted = core::json_get_int(object, "submitted");
  stats.completed = core::json_get_int(object, "completed");
  stats.shed = core::json_get_int(object, "shed");
  stats.rejected = core::json_get_int(object, "rejected");
  stats.failed = core::json_get_int(object, "failed");
  stats.batches = core::json_get_int(object, "batches");
  stats.batched_images = core::json_get_int(object, "batched_images");
  stats.mean_batch_size = core::json_get_number(object, "mean_batch_size");
  stats.max_batch_observed = core::json_get_int(object, "max_batch_observed");

  if (const auto it = object.find("batch_size_counts"); it != object.end()) {
    for (const JsonValue& entry : core::json_as_array(it->second, "batch_size_counts"))
      stats.batch_size_counts.push_back(
          static_cast<int64_t>(core::json_as_number(entry, "batch_size_counts entry")));
  }

  stats.queue_depth = core::json_get_int(object, "queue_depth");
  stats.peak_queue_depth = core::json_get_int(object, "peak_queue_depth");
  stats.kernel_variant = core::json_get_string(object, "kernel_variant");

  if (const auto it = object.find("latency"); it != object.end())
    stats.latency = latency_from_object(core::json_as_object(it->second, "latency"));

  if (const auto it = object.find("tenants"); it != object.end()) {
    for (const auto& [id, tenant] : core::json_as_object(it->second, "tenants"))
      stats.tenants.emplace(id, tenant_from_object(core::json_as_object(tenant, "tenant " + id)));
  }

  if (const auto it = object.find("models"); it != object.end()) {
    for (const auto& [id, model] : core::json_as_object(it->second, "models"))
      stats.models.emplace(id, model_from_object(core::json_as_object(model, "model " + id)));
  }
  return stats;
}

}  // namespace sesr::serve
