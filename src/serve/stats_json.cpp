#include "serve/stats_json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string_view>
#include <variant>
#include <vector>

namespace sesr::serve {

namespace {

// ---- emitting --------------------------------------------------------------

/// %.17g round-trips every finite double bit-exactly through strtod.
std::string number(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string number(int64_t value) { return std::to_string(value); }

/// Tenant/model ids are operator-chosen strings; escape the JSON specials.
std::string quoted(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Incremental object writer: field(...) appends `"name": value` with commas.
class ObjectWriter {
 public:
  ObjectWriter() : out_("{") {}

  void field(const char* name, const std::string& raw_value) {
    if (!first_) out_ += ", ";
    first_ = false;
    out_ += quoted(name) + ": " + raw_value;
  }
  void field(const char* name, int64_t value) { field(name, number(value)); }
  void field(const char* name, double value) { field(name, number(value)); }

  [[nodiscard]] std::string close() { return out_ + "}"; }

 private:
  std::string out_;
  bool first_ = true;
};

std::string latency_to_json(const LatencyHistogram::Snapshot& latency) {
  ObjectWriter out;
  out.field("count", latency.count);
  out.field("mean_ms", latency.mean_ms);
  out.field("max_ms", latency.max_ms);
  out.field("p50_ms", latency.p50_ms);
  out.field("p95_ms", latency.p95_ms);
  out.field("p99_ms", latency.p99_ms);
  return out.close();
}

// ---- parsing ---------------------------------------------------------------
//
// Minimal recursive-descent JSON reader covering exactly what the encoder
// emits (objects, arrays, strings, numbers, bools, null). Values land in a
// JsonValue variant; the typed extractors below validate field types.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("stats_json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return {parse_string()};
      case 't':
        if (consume_word("true")) return {true};
        fail("bad literal");
      case 'f':
        if (consume_word("false")) return {false};
        fail("bad literal");
      case 'n':
        if (consume_word("null")) return {nullptr};
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    if (consume('}')) return {std::move(object)};
    while (true) {
      std::string key = parse_string();
      expect(':');
      object.emplace(std::move(key), parse_value());
      if (consume('}')) break;
      expect(',');
    }
    return {std::move(object)};
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    if (consume(']')) return {std::move(array)};
    while (true) {
      array.push_back(parse_value());
      if (consume(']')) break;
      expect(',');
    }
    return {std::move(array)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) fail("bad \\u escape");
          // The encoder only emits \u00xx control characters; decode those
          // and reject anything outside one byte (never produced by us).
          if (code < 0 || code > 0xFF) fail("unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_space();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a value");
    if (!std::isfinite(value)) fail("non-finite number");
    pos_ += static_cast<size_t>(end - begin);
    return {value};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---- typed extraction ------------------------------------------------------

const JsonObject& as_object(const JsonValue& value, const std::string& where) {
  if (const auto* object = std::get_if<JsonObject>(&value.value)) return *object;
  throw std::runtime_error("stats_json: " + where + " is not an object");
}

double get_number(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  if (it == object.end()) return 0.0;  // absent counters read as zero
  if (const auto* value = std::get_if<double>(&it->second.value)) return *value;
  throw std::runtime_error(std::string("stats_json: field ") + name + " is not a number");
}

int64_t get_int(const JsonObject& object, const char* name) {
  return static_cast<int64_t>(get_number(object, name));
}

std::string get_string(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  if (it == object.end()) return {};  // absent strings read as empty
  if (const auto* value = std::get_if<std::string>(&it->second.value)) return *value;
  throw std::runtime_error(std::string("stats_json: field ") + name + " is not a string");
}

TenantStats tenant_from_object(const JsonObject& object) {
  TenantStats tenant;
  tenant.submitted = get_int(object, "submitted");
  tenant.completed = get_int(object, "completed");
  tenant.rejected = get_int(object, "rejected");
  tenant.shed = get_int(object, "shed");
  tenant.failed = get_int(object, "failed");
  tenant.in_queue = get_int(object, "in_queue");
  tenant.peak_in_queue = get_int(object, "peak_in_queue");
  return tenant;
}

}  // namespace

std::string stats_to_json(const TenantStats& stats) {
  ObjectWriter out;
  out.field("submitted", stats.submitted);
  out.field("completed", stats.completed);
  out.field("rejected", stats.rejected);
  out.field("shed", stats.shed);
  out.field("failed", stats.failed);
  out.field("in_queue", stats.in_queue);
  out.field("peak_in_queue", stats.peak_in_queue);
  return out.close();
}

std::string stats_to_json(const ServerStats& stats) {
  ObjectWriter out;
  out.field("submitted", stats.submitted);
  out.field("completed", stats.completed);
  out.field("shed", stats.shed);
  out.field("rejected", stats.rejected);
  out.field("failed", stats.failed);
  out.field("batches", stats.batches);
  out.field("batched_images", stats.batched_images);
  out.field("mean_batch_size", stats.mean_batch_size);
  out.field("max_batch_observed", stats.max_batch_observed);

  std::string counts = "[";
  for (size_t i = 0; i < stats.batch_size_counts.size(); ++i) {
    if (i > 0) counts += ", ";
    counts += number(stats.batch_size_counts[i]);
  }
  counts += "]";
  out.field("batch_size_counts", counts);

  out.field("queue_depth", stats.queue_depth);
  out.field("peak_queue_depth", stats.peak_queue_depth);
  out.field("kernel_variant", quoted(stats.kernel_variant));
  out.field("latency", latency_to_json(stats.latency));

  std::string tenants = "{";
  bool first = true;
  for (const auto& [id, tenant] : stats.tenants) {
    if (!first) tenants += ", ";
    first = false;
    tenants += quoted(id) + ": " + stats_to_json(tenant);
  }
  tenants += "}";
  out.field("tenants", tenants);
  return out.close();
}

TenantStats tenant_stats_from_json(const std::string& json) {
  const JsonValue document = JsonParser(json).parse_document();
  return tenant_from_object(as_object(document, "document"));
}

ServerStats server_stats_from_json(const std::string& json) {
  const JsonValue document = JsonParser(json).parse_document();
  const JsonObject& object = as_object(document, "document");

  ServerStats stats;
  stats.submitted = get_int(object, "submitted");
  stats.completed = get_int(object, "completed");
  stats.shed = get_int(object, "shed");
  stats.rejected = get_int(object, "rejected");
  stats.failed = get_int(object, "failed");
  stats.batches = get_int(object, "batches");
  stats.batched_images = get_int(object, "batched_images");
  stats.mean_batch_size = get_number(object, "mean_batch_size");
  stats.max_batch_observed = get_int(object, "max_batch_observed");

  if (const auto it = object.find("batch_size_counts"); it != object.end()) {
    const auto* array = std::get_if<JsonArray>(&it->second.value);
    if (array == nullptr)
      throw std::runtime_error("stats_json: batch_size_counts is not an array");
    for (const JsonValue& entry : *array) {
      const auto* value = std::get_if<double>(&entry.value);
      if (value == nullptr)
        throw std::runtime_error("stats_json: batch_size_counts entry is not a number");
      stats.batch_size_counts.push_back(static_cast<int64_t>(*value));
    }
  }

  stats.queue_depth = get_int(object, "queue_depth");
  stats.peak_queue_depth = get_int(object, "peak_queue_depth");
  stats.kernel_variant = get_string(object, "kernel_variant");

  if (const auto it = object.find("latency"); it != object.end()) {
    const JsonObject& latency = as_object(it->second, "latency");
    stats.latency.count = get_int(latency, "count");
    stats.latency.mean_ms = get_number(latency, "mean_ms");
    stats.latency.max_ms = get_number(latency, "max_ms");
    stats.latency.p50_ms = get_number(latency, "p50_ms");
    stats.latency.p95_ms = get_number(latency, "p95_ms");
    stats.latency.p99_ms = get_number(latency, "p99_ms");
  }

  if (const auto it = object.find("tenants"); it != object.end()) {
    const JsonObject& tenants = as_object(it->second, "tenants");
    for (const auto& [id, tenant] : tenants)
      stats.tenants.emplace(id, tenant_from_object(as_object(tenant, "tenant " + id)));
  }
  return stats;
}

}  // namespace sesr::serve
