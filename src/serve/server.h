// Async batched serving engine over the compiled inference runtime.
//
// The paper's deployment story is a collapsed SESR network answering x2
// upscale requests at scale; PRs 2-4 built the per-request machinery
// (compiled plans, pooled sessions, int8 lowering, arena-planned memory) but
// left a blocking one-image-per-call entry point. Server is the classic
// serving layer on top:
//
//   submit / submit_async            workers (pool of threads)
//        │                                │
//        ▼                                ▼
//   BoundedQueue ──► micro-batcher (pop_batch: same-shape coalescing,
//   (backpressure,    bounded linger) ──► NetworkUpscaler::upscale_batch
//    load shedding)                       (one batched NCHW dispatch over
//                                          the plan cache / session pool)
//                                              │
//                                              ▼
//                              per-request completion (future or callback)
//
// Admission control: the queue is bounded — submit() blocks (backpressure),
// try_submit() refuses and counts a rejection. Load shedding: a request may
// carry a deadline; a worker sheds expired requests at dispatch time instead
// of wasting compute on answers nobody is waiting for. Batching: plans
// compile per batched input shape, so coalescing k same-shape requests into
// one [k, C, H, W] dispatch amortizes every per-dispatch cost (queue and
// session-pool handoffs, per-op kernel launch and thread-pool fan-out)
// across k images while keeping outputs bit-identical to k separate
// upscale() calls — requests are only ever batched with identically-shaped
// peers, never resampled or padded.
//
// Instrumentation: a lock-cheap latency histogram (p50/p95/p99), queue
// depth, batch-size distribution, and shed/rejection counters, exposed as
// ServerStats — the SLO surface bench_server_load records into
// BENCH_server_load.json.
//
// Threading: submit paths and stats() are safe from any thread. Callbacks
// run on worker threads and must not block for long or re-enter stop().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/upscaler.h"
#include "serve/bounded_queue.h"
#include "serve/latency_histogram.h"
#include "tensor/tensor.h"

namespace sesr::serve {

enum class ServeStatus {
  kOk,     ///< output holds the upscaled image
  kShed,   ///< deadline expired before dispatch; never ran
  kError,  ///< the upscaler threw, or the server was already stopped
};

[[nodiscard]] const char* serve_status_name(ServeStatus status);

/// Completion of one request. `output` is [1, C, 2H, 2W] for kOk (identical
/// bits to NetworkUpscaler::upscale on the same single image) and empty
/// otherwise; `error` carries the shed/error detail.
struct ServeReply {
  ServeStatus status = ServeStatus::kError;
  Tensor output;
  std::string error;

  [[nodiscard]] bool ok() const { return status == ServeStatus::kOk; }
};

namespace detail {
struct ResultState;
}  // namespace detail

/// Completion handle returned by Server::submit. Copyable (handles share the
/// result); get() blocks until the worker completes the request and moves
/// the reply out (one-shot, like std::future).
class ServeFuture {
 public:
  ServeFuture() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool ready() const;

  /// Block until completion; true if the reply arrived within `timeout`.
  bool wait_for(std::chrono::milliseconds timeout) const;

  /// Block until completion and move the reply out (valid() becomes false).
  ServeReply get();

 private:
  friend class Server;
  explicit ServeFuture(std::shared_ptr<detail::ResultState> state) : state_(std::move(state)) {}
  std::shared_ptr<detail::ResultState> state_;
};

using ServeCallback = std::function<void(ServeReply)>;

/// Point-in-time view of the server's SLO metrics.
struct ServerStats {
  int64_t submitted = 0;   ///< admitted into the queue
  int64_t completed = 0;   ///< answered with kOk
  int64_t shed = 0;        ///< dropped at dispatch: deadline expired
  int64_t rejected = 0;    ///< refused at the door: try_submit on a full queue
  int64_t failed = 0;      ///< answered with kError (upscaler threw)

  int64_t batches = 0;            ///< dispatches issued
  int64_t batched_images = 0;     ///< images across all dispatches
  double mean_batch_size = 0.0;
  int64_t max_batch_observed = 0;
  /// batch_size_counts[k] = dispatches that coalesced exactly k images
  /// (index 0 unused).
  std::vector<int64_t> batch_size_counts;

  int64_t queue_depth = 0;       ///< at snapshot time
  int64_t peak_queue_depth = 0;  ///< high-water mark since construction

  /// Submit-to-completion latency of kOk requests.
  LatencyHistogram::Snapshot latency;
};

class Server {
 public:
  struct Options {
    /// Dispatch threads. Each checks a session out of the upscaler's pool
    /// per batch, so peak session memory scales with this.
    int workers = 1;
    /// Max images coalesced into one dispatch (>= 1; 1 disables batching).
    int64_t max_batch = 8;
    /// Bounded queue capacity — the backpressure/shedding knob.
    int64_t queue_capacity = 128;
    /// How long a worker holding a short batch waits for more same-shape
    /// arrivals. 0 = dispatch whatever is already queued (no added latency).
    std::chrono::microseconds batch_linger{0};
    /// Deadline applied by submit()/submit_async() when the caller passes
    /// none. 0 = no deadline (never shed).
    std::chrono::milliseconds default_deadline{0};
  };

  /// The upscaler is shared state: its plan cache / session pool / precision
  /// knob serve this Server and any direct upscale() callers alike.
  Server(std::shared_ptr<models::Upscaler> upscaler, const Options& options);
  explicit Server(std::shared_ptr<models::Upscaler> upscaler)
      : Server(std::move(upscaler), Options{}) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a single image ([C, H, W] or [1, C, H, W]), blocking while the
  /// queue is full (backpressure). deadline 0 = Options::default_deadline.
  /// After stop() the future completes immediately with kError.
  ServeFuture submit(Tensor image, std::chrono::milliseconds deadline = {});

  /// Callback flavour of submit(): same admission, completion delivered on a
  /// worker thread instead of through a future.
  void submit_async(Tensor image, ServeCallback callback,
                    std::chrono::milliseconds deadline = {});

  /// Non-blocking admission: false (request dropped, rejection counted) when
  /// the queue is full or the server is stopped.
  bool try_submit(Tensor image, ServeCallback callback,
                  std::chrono::milliseconds deadline = {});

  /// Precompile plans and prefill session pools for every batch size
  /// (1..max_batch) of the given single-image [C, H, W] shape, so no request
  /// ever pays the first-dispatch compile spike. No-op for upscalers without
  /// compiled inference.
  void warmup(const Shape& single_image_chw);

  [[nodiscard]] ServerStats stats() const;

  /// Stop admitting, drain every queued request, join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Request;

  void worker_loop();
  void dispatch(std::vector<Request>& batch, Tensor& gather_staging);
  static void complete(Request& request, ServeReply reply);

  std::shared_ptr<models::Upscaler> upscaler_;
  Options options_;

  std::unique_ptr<BoundedQueue<Request>> queue_;
  std::vector<std::thread> workers_;
  std::once_flag stop_once_;

  // SLO counters (relaxed atomics: monotonic counts, read via stats()).
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batched_images_{0};
  std::atomic<int64_t> max_batch_observed_{0};
  std::vector<std::atomic<int64_t>> batch_size_counts_;
  LatencyHistogram latency_;
};

}  // namespace sesr::serve
