// Async batched serving engine over the compiled inference runtime.
//
// The paper's deployment story is a collapsed SESR network answering x2
// upscale requests at scale; PRs 2-4 built the per-request machinery
// (compiled plans, pooled sessions, int8 lowering, arena-planned memory) but
// left a blocking one-image-per-call entry point. Server is the classic
// serving layer on top:
//
//   submit / submit_async            workers (pool of threads)
//        │                                │
//        ▼                                ▼
//   BoundedQueue ──► micro-batcher (pop_batch: same-model, same-shape
//   (backpressure,    coalescing, bounded linger) ──► ModelRegistry::acquire
//    load shedding,                                   (RCU snapshot) ──►
//    tenant quotas)                                   upscale_batch
//                                              │
//                                              ▼
//                              per-request completion (future or callback,
//                              stamped with the served model version)
//
// Model routing: every request names a model id; the worker resolves the
// id to the registry's *current* snapshot at dispatch time, so a
// ModelRegistry::publish() hot-swap takes effect for queued work immediately
// while in-flight dispatches finish on the snapshot they acquired (see
// serve/registry.h for the swap barrier guarantee). Replies carry the
// version that actually served them.
//
// Admission control: the queue is bounded — submit() blocks (backpressure),
// try_submit() refuses and counts a rejection — and each tenant can carry a
// quota: a cap on its queued-but-undispatched requests, enforced at the
// door (over-quota submissions fail immediately rather than starving other
// tenants of queue capacity). Load shedding: a request may carry a deadline;
// a worker sheds expired requests at dispatch time instead of wasting
// compute on answers nobody is waiting for. Batching: plans compile per
// batched input shape, so coalescing k same-shape requests into one
// [k, C, H, W] dispatch amortizes every per-dispatch cost across k images
// while keeping outputs bit-identical to k separate upscale() calls —
// requests are only ever batched with same-model, identically-shaped peers,
// never resampled or padded.
//
// Instrumentation: every counter, gauge, and the latency histogram is a
// registered instrument in a per-server obs::Registry — readable as the
// classic ServerStats view (stats()), as a mergeable RegistrySnapshot
// (metrics(), the fleet-merge unit the distributed tier's pongs carry), and
// as JSON / Prometheus text exposition (metrics_json() /
// metrics_prometheus()). Requests may carry an obs::TraceContext
// (SubmitOptions::trace, or minted at the door when SESR_TRACE is on):
// traced requests emit queue-wait / batch-form / session-run / reply spans
// into the flight-recorder rings (obs/trace.h).
//
// Fault injection: Options::fault_plan (serve/fault_plan.h) lets the test
// harness stall workers on a seeded schedule; production servers leave it
// null and pay one branch per dispatch.
//
// Threading: submit paths and stats() are safe from any thread. Callbacks
// run on worker threads and must not block for long or re-enter stop().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "models/upscaler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/bounded_queue.h"
#include "serve/fault_plan.h"
#include "serve/future.h"
#include "serve/latency_histogram.h"
#include "serve/registry.h"
#include "tensor/tensor.h"

namespace sesr::serve {

/// Model id used by the single-upscaler constructor and by submissions that
/// do not name a model.
inline constexpr const char* kDefaultModel = "default";
/// Tenant id used by submissions that do not name a tenant.
inline constexpr const char* kDefaultTenant = "default";

/// Per-tenant admission policy (Options::tenant_quotas; tenants without an
/// entry get the defaults — unlimited occupancy, server-default deadline).
struct TenantQuota {
  /// Max requests this tenant may have queued-but-undispatched at once.
  /// 0 = unlimited. Enforced at submission: over-quota requests fail
  /// immediately with kError (blocking submit) or are refused (try_submit).
  int64_t max_in_queue = 0;
  /// Deadline applied to this tenant's requests that carry none.
  /// 0 = fall through to Options::default_deadline.
  std::chrono::milliseconds default_deadline{0};
};

/// Point-in-time per-tenant counters (ServerStats::tenants).
struct TenantStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;  ///< queue-full try_submit refusals + quota refusals
  int64_t shed = 0;
  int64_t failed = 0;
  int64_t in_queue = 0;       ///< queued-but-undispatched right now
  int64_t peak_in_queue = 0;  ///< occupancy high-water mark
};

/// Point-in-time occupancy of one compiled-shape session pool
/// (ServerStats::models). `plan_key` is the upscaler's cache key: the
/// batched input shape plus the kernel tier it compiled under.
struct PoolStats {
  std::string plan_key;
  int64_t idle = 0;
  int64_t live = 0;
  int64_t peak = 0;  ///< high-water of concurrent checkouts
};

/// Per-model serving-path counters (plan cache and session pools) from the
/// model's NetworkUpscaler. Interpolation-backed models report zeros.
struct ModelStats {
  int64_t version = 0;          ///< registry version currently serving
  int64_t plan_compiles = 0;    ///< plan-cache misses (compiles)
  int64_t plan_cache_hits = 0;  ///< plan-cache hits
  std::vector<PoolStats> session_pools;
};

/// Point-in-time view of the server's SLO metrics.
struct ServerStats {
  int64_t submitted = 0;   ///< admitted into the queue
  int64_t completed = 0;   ///< answered with kOk
  int64_t shed = 0;        ///< dropped at dispatch: deadline expired
  int64_t rejected = 0;    ///< refused at the door: queue full or over quota
  int64_t failed = 0;      ///< answered with kError (upscaler threw)

  int64_t batches = 0;            ///< dispatches issued
  int64_t batched_images = 0;     ///< images across all dispatches
  double mean_batch_size = 0.0;
  int64_t max_batch_observed = 0;
  /// batch_size_counts[k] = dispatches that coalesced exactly k images
  /// (index 0 unused).
  std::vector<int64_t> batch_size_counts;

  int64_t queue_depth = 0;       ///< at snapshot time
  int64_t peak_queue_depth = 0;  ///< high-water mark since construction

  /// SIMD kernel tier newly compiled programs run on ("scalar", "avx2",
  /// "avx512vnni") — simd::active_variant() at snapshot time. Lets the
  /// frontend / ops tooling see which tier a shard serves with.
  std::string kernel_variant;

  /// Submit-to-completion latency of kOk requests.
  LatencyHistogram::Snapshot latency;

  /// Counters for every tenant that has ever submitted.
  std::map<std::string, TenantStats> tenants;

  /// Plan-cache and session-pool state for every registered model.
  std::map<std::string, ModelStats> models;
};

class Server {
 public:
  struct Options {
    /// Dispatch threads. Each checks a session out of the upscaler's pool
    /// per batch, so peak session memory scales with this.
    int workers = 1;
    /// Max images coalesced into one dispatch (>= 1; 1 disables batching).
    int64_t max_batch = 8;
    /// Bounded queue capacity — the backpressure/shedding knob.
    int64_t queue_capacity = 128;
    /// How long a worker holding a short batch waits for more same-shape
    /// arrivals. 0 = dispatch whatever is already queued (no added latency).
    std::chrono::microseconds batch_linger{0};
    /// Deadline applied by submit()/submit_async() when neither the caller
    /// nor the tenant's quota supplies one. 0 = no deadline (never shed).
    std::chrono::milliseconds default_deadline{0};
    /// Admission policy per tenant id; absent tenants get TenantQuota{}.
    std::map<std::string, TenantQuota> tenant_quotas;
    /// Deterministic fault schedule for the test harness (worker_stall seam
    /// consulted per dispatch). Null in production.
    std::shared_ptr<const FaultPlan> fault_plan;
  };

  /// Routing fields of a submission. Defaults reproduce the single-model,
  /// single-tenant behaviour of the deadline-only overloads.
  struct SubmitOptions {
    std::string model = kDefaultModel;
    std::string tenant = kDefaultTenant;
    /// 0 = tenant default deadline, then Options::default_deadline.
    std::chrono::milliseconds deadline{0};
    /// Incoming trace linkage ({trace id, parent span}), e.g. decoded off
    /// the shard wire. Default-none: the server mints its own root trace
    /// when SESR_TRACE is enabled.
    obs::TraceContext trace{};
  };

  /// Serve every model published in `registry` (shared control plane: swaps
  /// published there take effect here per the registry's barrier guarantee).
  Server(std::shared_ptr<ModelRegistry> registry, const Options& options);

  /// Single-model convenience: wraps `upscaler` in a private registry under
  /// kDefaultModel. The upscaler is shared state: its plan cache / session
  /// pool / precision knob serve this Server and direct upscale() callers
  /// alike.
  Server(std::shared_ptr<models::Upscaler> upscaler, const Options& options);
  explicit Server(std::shared_ptr<models::Upscaler> upscaler)
      : Server(std::move(upscaler), Options{}) {}
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a single image ([C, H, W] or [1, C, H, W]) for kDefaultModel /
  /// kDefaultTenant, blocking while the queue is full (backpressure).
  /// deadline 0 = Options::default_deadline. After stop() the future
  /// completes immediately with kError.
  ServeFuture submit(Tensor image, std::chrono::milliseconds deadline = {});

  /// Routed flavour: submit for a specific model and tenant. Throws
  /// std::invalid_argument for an unregistered model id; an over-quota
  /// tenant gets an immediate kError reply (counted as rejected).
  ServeFuture submit(Tensor image, const SubmitOptions& submit_options);

  /// Callback flavour of submit(): same admission, completion delivered on a
  /// worker thread instead of through a future.
  void submit_async(Tensor image, ServeCallback callback,
                    std::chrono::milliseconds deadline = {});
  void submit_async(Tensor image, const SubmitOptions& submit_options, ServeCallback callback);

  /// Non-blocking admission: false (request dropped, rejection counted) when
  /// the queue is full, the tenant is over quota, or the server is stopped.
  bool try_submit(Tensor image, ServeCallback callback,
                  std::chrono::milliseconds deadline = {});
  bool try_submit(Tensor image, const SubmitOptions& submit_options, ServeCallback callback);

  /// Precompile plans and prefill session pools for every batch size
  /// (1..max_batch) of the given single-image [C, H, W] shape on the named
  /// model's *current* snapshot, so no request pays the first-dispatch
  /// compile spike. No-op for upscalers without compiled inference. (After a
  /// publish(), warm the new snapshot through the registry's warm_shapes
  /// parameter instead — it warms before the swap.)
  void warmup(const Shape& single_image_chw);
  void warmup(const std::string& model, const Shape& single_image_chw);

  [[nodiscard]] ServerStats stats() const;

  /// Unified metrics view: this server's registered instruments (the same
  /// values stats() reports) plus the process-global default registry
  /// (per-op profiler aggregates), with point-in-time gauges — queue depth,
  /// per-model plan/pool state — refreshed at snapshot time. Mergeable
  /// across servers/shards; counters merge exactly (int64 sums).
  [[nodiscard]] obs::RegistrySnapshot metrics() const;
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string metrics_prometheus() const;

  /// Stop admitting, drain every queued request, join the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }

 private:
  struct Request;
  struct TenantState;

  TenantState& tenant_for(const std::string& tenant);
  Request make_request(Tensor image, const SubmitOptions& submit_options);
  /// Quota gate: true admits (occupancy charged), false means the caller
  /// must reject the request. On false nothing is charged.
  bool charge_tenant(TenantState& tenant);
  void worker_loop();
  void dispatch(std::vector<Request>& batch, Tensor& gather_staging);
  static void complete(Request& request, ServeReply reply);

  std::shared_ptr<ModelRegistry> registry_;
  Options options_;

  std::unique_ptr<BoundedQueue<Request>> queue_;
  std::vector<std::thread> workers_;
  std::once_flag stop_once_;

  // Tenant states live behind stable pointers for the server's lifetime
  // (requests hold raw pointers across the queue).
  mutable std::mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  // Every SLO counter, gauge, and the latency histogram lives in metrics_
  // (declared first: the instrument references below bind to it). stats()
  // and metrics() read the same instruments, so the two views cannot drift.
  mutable obs::Registry metrics_;
  obs::Counter& submitted_ = metrics_.counter("serve.submitted");
  obs::Counter& completed_ = metrics_.counter("serve.completed");
  obs::Counter& shed_ = metrics_.counter("serve.shed");
  obs::Counter& rejected_ = metrics_.counter("serve.rejected");
  obs::Counter& failed_ = metrics_.counter("serve.failed");
  obs::Counter& batches_ = metrics_.counter("serve.batches");
  obs::Counter& batched_images_ = metrics_.counter("serve.batched_images");
  obs::Gauge& max_batch_observed_ = metrics_.gauge("serve.max_batch_observed");
  obs::Histogram& latency_ = metrics_.histogram("serve.latency_us");
  /// batch_size_counts_[k] -> instrument "serve.batch_size|n=k" (index 0
  /// registered but never incremented, mirroring the historical vector).
  std::vector<obs::Counter*> batch_size_counts_;
  std::atomic<int64_t> dispatch_index_{0};  ///< fault-plan cursor, not a metric
};

}  // namespace sesr::serve
