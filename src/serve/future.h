// Request completion plumbing shared by every serving tier.
//
// A submission — whether into a single-process serve::Server or through the
// distributed dist::Frontend — resolves to one ServeReply, delivered either
// through a ServeFuture (the caller blocks/polls) or a ServeCallback (the
// engine invokes it on one of its threads). Both tiers complete requests
// through detail::complete_result on a shared detail::ResultState, so the
// future/callback semantics (one-shot, exactly one completion, callback
// exceptions swallowed) are identical everywhere.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "tensor/tensor.h"

namespace sesr::serve {

enum class ServeStatus {
  kOk,     ///< output holds the upscaled image
  kShed,   ///< deadline expired before dispatch; never ran
  kError,  ///< the upscaler threw, quota refused, or the server was stopped
};

[[nodiscard]] inline const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kError: return "error";
  }
  return "?";
}

/// Completion of one request. `output` is [1, C, 2H, 2W] for kOk (identical
/// bits to NetworkUpscaler::upscale on the same single image) and empty
/// otherwise; `error` carries the shed/error detail. `model_version` is the
/// registry version that served the request (0 when it never reached a
/// model — shed, quota-refused, or stopped).
struct ServeReply {
  ServeStatus status = ServeStatus::kError;
  Tensor output;
  std::string error;
  int64_t model_version = 0;

  [[nodiscard]] bool ok() const { return status == ServeStatus::kOk; }
};

using ServeCallback = std::function<void(ServeReply)>;

namespace detail {

/// Shared state behind one submission: either a waiter parks on (mutex, cv)
/// until `ready`, or `callback` was set at submission time and is invoked
/// instead of storing the reply.
struct ResultState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  ServeReply reply;
  ServeCallback callback;  ///< set at submission; invoked instead of storing
};

/// Deliver `reply` to `state`: invoke the callback (on the calling thread)
/// when one was registered, otherwise store the reply and wake waiters. A
/// throwing callback must not take the serving engine down — the contract is
/// "callbacks do not throw", and violations are swallowed.
inline void complete_result(ResultState& state, ServeReply reply) {
  if (state.callback) {
    try {
      state.callback(std::move(reply));
    } catch (...) {
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.reply = std::move(reply);
    state.ready = true;
  }
  state.cv.notify_all();
}

}  // namespace detail

/// Completion handle returned by blocking-future submit paths. Copyable
/// (handles share the result); get() blocks until the engine completes the
/// request and moves the reply out (one-shot, like std::future).
class ServeFuture {
 public:
  ServeFuture() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] bool ready() const {
    if (!state_) return false;
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->ready;
  }

  /// Block until completion; true if the reply arrived within `timeout`.
  bool wait_for(std::chrono::milliseconds timeout) const {
    if (!state_) return false;
    std::unique_lock<std::mutex> lock(state_->mutex);
    return state_->cv.wait_for(lock, timeout, [&] { return state_->ready; });
  }

  /// Block until completion and move the reply out (valid() becomes false).
  ServeReply get() {
    if (!state_) throw std::logic_error("ServeFuture::get: empty future");
    std::shared_ptr<detail::ResultState> state = std::move(state_);
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] { return state->ready; });
    return std::move(state->reply);
  }

 private:
  friend ServeFuture detail_make_future(std::shared_ptr<detail::ResultState> state);
  explicit ServeFuture(std::shared_ptr<detail::ResultState> state) : state_(std::move(state)) {}
  std::shared_ptr<detail::ResultState> state_;
};

/// Wrap a ResultState in a ServeFuture (serving-tier internals only).
inline ServeFuture detail_make_future(std::shared_ptr<detail::ResultState> state) {
  return ServeFuture(std::move(state));
}

}  // namespace sesr::serve
