#include "core/evaluator.h"

#include <algorithm>

#include "data/metrics.h"
#include "nn/loss.h"

namespace sesr::core {

std::vector<int64_t> GrayBoxEvaluator::correctly_classified(
    const data::ShapesTexDataset& dataset, int64_t pool, int64_t max_count) {
  std::vector<int64_t> selected;
  for (int64_t first = 0; first < pool && static_cast<int64_t>(selected.size()) < max_count;
       first += batch_size_) {
    const int64_t count = std::min(batch_size_, pool - first);
    const Tensor images = dataset.images(first, count);
    const std::vector<int64_t> labels = dataset.labels(first, count);
    const std::vector<int64_t> preds = nn::argmax_rows(classifier_->forward(images));
    for (int64_t i = 0; i < count; ++i) {
      if (preds[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)]) {
        selected.push_back(first + i);
        if (static_cast<int64_t>(selected.size()) >= max_count) break;
      }
    }
  }
  return selected;
}

float GrayBoxEvaluator::clean_accuracy(const data::ShapesTexDataset& dataset,
                                       const std::vector<int64_t>& indices,
                                       const DefensePipeline* defense) {
  std::vector<int64_t> preds, labels;
  for (size_t first = 0; first < indices.size(); first += static_cast<size_t>(batch_size_)) {
    const size_t count = std::min(static_cast<size_t>(batch_size_), indices.size() - first);
    const std::vector<int64_t> batch_idx(indices.begin() + static_cast<std::ptrdiff_t>(first),
                                         indices.begin() + static_cast<std::ptrdiff_t>(first + count));
    Tensor images = dataset.images_at(batch_idx);
    if (defense) images = defense->apply(images);
    const std::vector<int64_t> batch_preds = nn::argmax_rows(classifier_->forward(images));
    preds.insert(preds.end(), batch_preds.begin(), batch_preds.end());
    const std::vector<int64_t> batch_labels = dataset.labels_at(batch_idx);
    labels.insert(labels.end(), batch_labels.begin(), batch_labels.end());
  }
  return data::accuracy_percent(preds, labels);
}

float GrayBoxEvaluator::robust_accuracy(const data::ShapesTexDataset& dataset,
                                        const std::vector<int64_t>& indices,
                                        attacks::Attack& attack,
                                        const DefensePipeline* defense) {
  const Tensor adversarial = craft_adversarial(dataset, indices, attack);
  return accuracy_on(adversarial, dataset.labels_at(indices), defense);
}

Tensor GrayBoxEvaluator::craft_adversarial(const data::ShapesTexDataset& dataset,
                                           const std::vector<int64_t>& indices,
                                           attacks::Attack& attack) {
  const int64_t s = dataset.options().image_size;
  Tensor adversarial({static_cast<int64_t>(indices.size()), 3, s, s});
  const int64_t sample_sz = 3 * s * s;
  for (size_t first = 0; first < indices.size(); first += static_cast<size_t>(batch_size_)) {
    const size_t count = std::min(static_cast<size_t>(batch_size_), indices.size() - first);
    const std::vector<int64_t> batch_idx(indices.begin() + static_cast<std::ptrdiff_t>(first),
                                         indices.begin() + static_cast<std::ptrdiff_t>(first + count));
    const Tensor images = dataset.images_at(batch_idx);
    // Gray-box: the attack sees only the undefended classifier.
    const Tensor adv = attack.perturb(*classifier_, images, dataset.labels_at(batch_idx));
    std::copy(adv.data(), adv.data() + adv.numel(),
              adversarial.data() + static_cast<int64_t>(first) * sample_sz);
  }
  return adversarial;
}

float GrayBoxEvaluator::accuracy_on(const Tensor& images, const std::vector<int64_t>& labels,
                                    const DefensePipeline* defense) {
  const int64_t n = images.dim(0);
  const int64_t sample_sz = images.numel() / n;
  std::vector<int64_t> preds;
  for (int64_t first = 0; first < n; first += batch_size_) {
    const int64_t count = std::min(batch_size_, n - first);
    Tensor batch({count, images.dim(1), images.dim(2), images.dim(3)});
    std::copy(images.data() + first * sample_sz, images.data() + (first + count) * sample_sz,
              batch.data());
    if (defense) batch = defense->apply(batch);
    const std::vector<int64_t> batch_preds = nn::argmax_rows(classifier_->forward(batch));
    preds.insert(preds.end(), batch_preds.begin(), batch_preds.end());
  }
  return data::accuracy_percent(preds, labels);
}

}  // namespace sesr::core
