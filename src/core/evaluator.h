// Gray-box robustness evaluation (the paper's Table II protocol).
//
// 1. Select an evaluation set on which the *undefended* classifier is 100%
//    correct (the paper picks 5000 such ImageNet images per classifier).
// 2. Craft adversarial examples with gradients of the undefended classifier
//    at the raw input resolution — the attacker knows the classifier but not
//    the defense (gray-box).
// 3. Report robust accuracy = top-1 accuracy of the classifier on the
//    defended (JPEG + wavelet + x2 SR) adversarial images. Without a defense,
//    the classifier sees the raw adversarial images.
#pragma once

#include <memory>
#include <vector>

#include "attacks/attack.h"
#include "core/defense.h"
#include "data/shapes_tex.h"
#include "models/classifiers.h"

namespace sesr::core {

class GrayBoxEvaluator {
 public:
  explicit GrayBoxEvaluator(std::shared_ptr<models::Classifier> classifier,
                            int64_t batch_size = 32)
      : classifier_(std::move(classifier)), batch_size_(batch_size) {}

  /// Scan dataset indices [0, pool) and return up to `max_count` indices that
  /// the undefended classifier classifies correctly (the paper's protocol of
  /// evaluating only on initially-correct images).
  [[nodiscard]] std::vector<int64_t> correctly_classified(const data::ShapesTexDataset& dataset,
                                                          int64_t pool, int64_t max_count);

  /// Clean accuracy (%) of the classifier on the given indices, optionally
  /// through a defense.
  [[nodiscard]] float clean_accuracy(const data::ShapesTexDataset& dataset,
                                     const std::vector<int64_t>& indices,
                                     const DefensePipeline* defense = nullptr);

  /// Robust accuracy (%) under `attack`, evaluated through `defense`
  /// (nullptr = the paper's "No Defense" row: the classifier consumes the raw
  /// adversarial images).
  [[nodiscard]] float robust_accuracy(const data::ShapesTexDataset& dataset,
                                      const std::vector<int64_t>& indices,
                                      attacks::Attack& attack,
                                      const DefensePipeline* defense = nullptr);

  /// Craft the adversarial images once. Gray-box attacks are independent of
  /// the defense, so one crafted set serves every defense row of Table II.
  [[nodiscard]] Tensor craft_adversarial(const data::ShapesTexDataset& dataset,
                                         const std::vector<int64_t>& indices,
                                         attacks::Attack& attack);

  /// Accuracy (%) of the classifier on pre-crafted images, optionally
  /// through a defense. Pairs with craft_adversarial.
  [[nodiscard]] float accuracy_on(const Tensor& images, const std::vector<int64_t>& labels,
                                  const DefensePipeline* defense = nullptr);

  [[nodiscard]] models::Classifier& classifier() { return *classifier_; }
  [[nodiscard]] const models::Classifier& classifier() const { return *classifier_; }

 private:
  std::shared_ptr<models::Classifier> classifier_;
  int64_t batch_size_;
};

}  // namespace sesr::core
