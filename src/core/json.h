// Minimal JSON reader/writer shared by the serving and observability layers.
//
// The serving stack exchanges small machine-generated documents (shard stats
// over heartbeat pongs, metrics registry snapshots, Chrome trace events), so
// this deliberately covers exactly what our encoders emit — objects, arrays,
// strings, finite numbers, bools, null — rather than the whole of RFC 8259.
// Numbers are emitted with %.17g so every finite double round-trips
// bit-exactly through strtod; strings escape the JSON specials plus \u00xx
// control characters.
//
// The parser accepts any field order, tolerates unknown fields (callers pick
// the fields they know), and throws std::runtime_error with a byte offset for
// malformed documents.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sesr::core {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value;
};

/// Parse one complete JSON document. Throws std::runtime_error ("json: ...
/// at byte N") on malformed input or trailing content.
[[nodiscard]] JsonValue json_parse(std::string_view text);

// ---- emitting --------------------------------------------------------------

/// %.17g round-trips every finite double bit-exactly through strtod.
[[nodiscard]] std::string json_number(double value);
[[nodiscard]] std::string json_number(int64_t value);

/// Quote + escape an arbitrary string (specials, \u00xx for controls).
[[nodiscard]] std::string json_quote(const std::string& text);

/// Incremental object writer: field(...) appends `"name": value` with commas.
/// The string overload takes pre-rendered JSON (use json_quote for strings).
class JsonObjectWriter {
 public:
  JsonObjectWriter() : out_("{") {}

  void field(const char* name, const std::string& raw_value) {
    if (!first_) out_ += ", ";
    first_ = false;
    out_ += json_quote(name) + ": " + raw_value;
  }
  void field(const char* name, int64_t value) { field(name, json_number(value)); }
  void field(const char* name, double value) { field(name, json_number(value)); }

  [[nodiscard]] std::string close() { return out_ + "}"; }

 private:
  std::string out_;
  bool first_ = true;
};

// ---- typed extraction ------------------------------------------------------
//
// Absent numeric/string fields read as zero/empty (a newer writer may emit
// fields an older reader does not know, and vice versa); present fields of
// the wrong type throw.

[[nodiscard]] const JsonObject& json_as_object(const JsonValue& value, const std::string& where);
[[nodiscard]] const JsonArray& json_as_array(const JsonValue& value, const std::string& where);
[[nodiscard]] double json_as_number(const JsonValue& value, const std::string& where);
[[nodiscard]] double json_get_number(const JsonObject& object, const char* name);
[[nodiscard]] int64_t json_get_int(const JsonObject& object, const char* name);
[[nodiscard]] std::string json_get_string(const JsonObject& object, const char* name);

}  // namespace sesr::core
