// Umbrella header for the defense core.
#pragma once

#include "core/checkpoint.h"
#include "core/config.h"
#include "core/defense.h"
#include "core/evaluator.h"
#include "core/trainer.h"
