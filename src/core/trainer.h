// Training loops for classifiers and SR networks.
//
// Small, deterministic trainers used by the benches and examples. They are
// not meant to compete with a real training framework — they exist because
// every model in this reproduction is trained from scratch, in process, on
// the synthetic datasets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "data/shapes_tex.h"
#include "data/synthetic_div2k.h"
#include "models/classifiers.h"
#include "nn/nn.h"
#include "preprocess/interpolation.h"

namespace sesr::core {

struct ClassifierTrainingOptions {
  int64_t train_size = 2048;  ///< samples drawn from the dataset front
  int64_t batch_size = 64;
  int epochs = 20;
  float learning_rate = 2e-3f;
  /// Probability of presenting a batch bicubically upscaled x2. The paper's
  /// ImageNet classifiers are scale-robust enough to consume 598x598 inputs;
  /// our from-scratch models acquire the same property through this
  /// resolution augmentation (clean images only — never adversarial ones).
  float upscaled_batch_prob = 0.3f;
  uint64_t seed = 3;
  bool verbose = false;
};

struct TrainingSummary {
  float final_loss = 0.0f;
  float final_accuracy = 0.0f;  ///< train accuracy (%) for classifiers; 0 for SR
  int64_t steps = 0;
};

/// Train a classifier with Adam + cross-entropy on ShapesTex samples
/// [0, train_size). Returns the last epoch's mean loss / accuracy.
TrainingSummary train_classifier(models::Classifier& classifier,
                                 const data::ShapesTexDataset& dataset,
                                 const ClassifierTrainingOptions& opts = {});

enum class SrLoss { kMae, kMse };

struct SrTrainingOptions {
  int64_t train_size = 2048;
  int64_t batch_size = 16;
  int epochs = 4;
  float learning_rate = 1e-3f;
  SrLoss loss = SrLoss::kMae;  ///< MAE for EDSR/SESR, MSE for FSRCNN
  uint64_t seed = 5;
  bool verbose = false;
};

/// Train an SR network (any Module mapping LR -> HR) on SyntheticDiv2k pairs.
TrainingSummary train_sr(nn::Module& network, const data::SyntheticDiv2k& dataset,
                         const SrTrainingOptions& opts = {});

/// Train a 1-channel SR network on the Y (luma) planes of SyntheticDiv2k
/// pairs — the original SESR/FSRCNN formulation (paper footnote 2).
TrainingSummary train_sr_luma(nn::Module& network, const data::SyntheticDiv2k& dataset,
                              const SrTrainingOptions& opts = {});

/// Mean PSNR (dB) of `network` on validation pairs [first, first + count),
/// output clamped to [0, 1].
float evaluate_sr_psnr(nn::Module& network, const data::SyntheticDiv2k& dataset, int64_t first,
                       int64_t count);

/// Mean PSNR of classical interpolation on the same protocol (baseline rows).
float evaluate_interpolation_psnr(preprocess::InterpolationKind kind,
                                  const data::SyntheticDiv2k& dataset, int64_t first,
                                  int64_t count);

}  // namespace sesr::core
