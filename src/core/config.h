// Typed configuration layer over the SESR_* environment knobs.
//
// Every runtime knob the library or its benches read from the environment is
// declared once in a registration table (config_specs), giving each knob a
// type, a legal value range, a default, and a one-line description. Call
// sites ask for a knob by name through the typed getters instead of calling
// getenv and hand-rolling strtol:
//
//   - integer knobs accept K/M/G binary suffixes ("64K" = 65536, "1G" =
//     2^30, optional trailing 'B'), so memory- and count-shaped knobs read
//     naturally;
//   - values that parse but fall outside the registered range are clamped
//     onto it (a queue capacity of 10^12 becomes the documented maximum, not
//     an allocation bomb);
//   - values that do not parse at all are rejected: the knob falls back to
//     its registered default instead of silently becoming 0 ("unlimited",
//     "4x" and other typos never flip a semantic switch).
//
// Knobs are re-read from the environment on every getter call (none of them
// sit on a per-element hot path; the two perf-adjacent ones are read once
// per session return / pool construction), so tests and operators can flip
// them at run time. The registration table is also the documentation source:
// config_markdown_table() renders the README's knob table, so docs and code
// cannot drift apart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sesr::core {

enum class ConfigType { kInt64, kDouble, kBool, kString };

[[nodiscard]] const char* config_type_name(ConfigType type);

/// One registered knob. `min/max` bound int64 and double knobs (ignored for
/// bool/string); `default_text` is the human-readable default shown in docs
/// (e.g. "hardware concurrency" for dynamically-defaulted knobs).
struct ConfigSpec {
  std::string name;
  ConfigType type = ConfigType::kString;
  std::optional<int64_t> default_int;
  double default_double = 0.0;
  bool default_bool = false;
  std::string default_string;
  int64_t min_int = 0;
  int64_t max_int = 0;
  double min_double = 0.0;
  double max_double = 0.0;
  std::string default_text;
  std::string description;
};

/// The registration table: every SESR_* knob the tree reads, in doc order.
[[nodiscard]] const std::vector<ConfigSpec>& config_specs();

/// Spec lookup by exact name; throws std::invalid_argument for a name that
/// was never registered (a programming error, not an operator error).
[[nodiscard]] const ConfigSpec& config_spec(std::string_view name);

// ---- pure parsers (unit-tested directly) -----------------------------------

/// Parse an integer with an optional binary suffix: "128", "64K", "2m",
/// "1GB". K/M/G multiply by 2^10/2^20/2^30 (case-insensitive; optional
/// trailing 'B'). Returns nullopt for anything else — trailing junk, empty
/// strings, or values that overflow int64 after the multiply.
[[nodiscard]] std::optional<int64_t> parse_config_int64(std::string_view text);

/// Parse a double, accepting the same K/M/G suffixes. Rejects non-finite
/// results and trailing junk.
[[nodiscard]] std::optional<double> parse_config_double(std::string_view text);

/// Parse a boolean: 1/true/on/yes vs 0/false/off/no (case-insensitive).
[[nodiscard]] std::optional<bool> parse_config_bool(std::string_view text);

// ---- typed getters ---------------------------------------------------------
//
// Each getter reads the named knob from the environment, parses it at the
// registered type, clamps parsed values onto the registered range, and falls
// back to the registered default (or the caller's `fallback` for knobs whose
// default is computed at run time, e.g. hardware concurrency) when the
// variable is unset or unparsable. The name must be registered.

[[nodiscard]] int64_t config_int64(std::string_view name);
[[nodiscard]] int64_t config_int64(std::string_view name, int64_t fallback);
[[nodiscard]] double config_double(std::string_view name);
[[nodiscard]] bool config_bool(std::string_view name);
[[nodiscard]] std::string config_string(std::string_view name);

/// GitHub-markdown table of every registered knob (name, type, range,
/// default, description) — the README's "Runtime knobs" section is this
/// function's output, and a unit test keeps the two in sync.
[[nodiscard]] std::string config_markdown_table();

}  // namespace sesr::core
