#include "core/trainer.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "data/metrics.h"
#include "models/luma_sr.h"
#include "preprocess/interpolation.h"

namespace sesr::core {

TrainingSummary train_classifier(models::Classifier& classifier,
                                 const data::ShapesTexDataset& dataset,
                                 const ClassifierTrainingOptions& opts) {
  Rng rng(opts.seed);
  classifier.init_weights(rng);
  nn::Adam optimizer(classifier.parameters(), opts.learning_rate);

  std::vector<int64_t> order(static_cast<size_t>(opts.train_size));
  std::iota(order.begin(), order.end(), 0);

  TrainingSummary summary;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double loss_sum = 0.0;
    int64_t correct = 0, seen = 0, batches = 0;
    for (size_t first = 0; first + 1 < order.size(); first += static_cast<size_t>(opts.batch_size)) {
      const size_t count = std::min(static_cast<size_t>(opts.batch_size), order.size() - first);
      const std::vector<int64_t> batch_idx(order.begin() + static_cast<std::ptrdiff_t>(first),
                                           order.begin() + static_cast<std::ptrdiff_t>(first + count));
      Tensor images = dataset.images_at(batch_idx);
      const std::vector<int64_t> labels = dataset.labels_at(batch_idx);
      if (opts.upscaled_batch_prob > 0.0f && rng.bernoulli(opts.upscaled_batch_prob))
        images = preprocess::upscale(images, 2, preprocess::InterpolationKind::kBicubic);

      classifier.zero_grad();
      const Tensor logits = classifier.forward(images);
      nn::LossResult ce = nn::cross_entropy_loss(logits, labels);
      classifier.backward(ce.grad);
      optimizer.step();

      const std::vector<int64_t> preds = nn::argmax_rows(logits);
      for (size_t i = 0; i < labels.size(); ++i)
        if (preds[i] == labels[i]) ++correct;
      seen += static_cast<int64_t>(labels.size());
      loss_sum += ce.value;
      ++batches;
      ++summary.steps;
    }
    summary.final_loss = static_cast<float>(loss_sum / std::max<int64_t>(batches, 1));
    summary.final_accuracy =
        100.0f * static_cast<float>(correct) / static_cast<float>(std::max<int64_t>(seen, 1));
    if (opts.verbose)
      std::printf("  [%s] epoch %d/%d  loss %.4f  train-acc %.2f%%\n",
                  classifier.name().c_str(), epoch + 1, opts.epochs, summary.final_loss,
                  summary.final_accuracy);
  }
  return summary;
}

TrainingSummary train_sr(nn::Module& network, const data::SyntheticDiv2k& dataset,
                         const SrTrainingOptions& opts) {
  Rng rng(opts.seed);
  network.init_weights(rng);  // honours model-specific schemes (e.g. SESR's)
  nn::Adam optimizer(network.parameters(), opts.learning_rate);

  std::vector<int64_t> order(static_cast<size_t>(opts.train_size));
  std::iota(order.begin(), order.end(), 0);

  TrainingSummary summary;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t first = 0; first + 1 < order.size(); first += static_cast<size_t>(opts.batch_size)) {
      const size_t count = std::min(static_cast<size_t>(opts.batch_size), order.size() - first);
      // Contiguous ranges of the shuffled order, materialised as one batch.
      Tensor lr_batch, hr_batch;
      {
        const int64_t hs = dataset.options().hr_size;
        const int64_t ls = hs / dataset.options().scale;
        lr_batch = Tensor({static_cast<int64_t>(count), 3, ls, ls});
        hr_batch = Tensor({static_cast<int64_t>(count), 3, hs, hs});
        for (size_t i = 0; i < count; ++i) {
          const data::SrPair pair = dataset.get(order[first + i]);
          std::copy(pair.lr.data(), pair.lr.data() + 3 * ls * ls,
                    lr_batch.data() + static_cast<int64_t>(i) * 3 * ls * ls);
          std::copy(pair.hr.data(), pair.hr.data() + 3 * hs * hs,
                    hr_batch.data() + static_cast<int64_t>(i) * 3 * hs * hs);
        }
      }

      network.zero_grad();
      const Tensor prediction = network.forward(lr_batch);
      nn::LossResult loss = (opts.loss == SrLoss::kMae) ? nn::mae_loss(prediction, hr_batch)
                                                        : nn::mse_loss(prediction, hr_batch);
      network.backward(loss.grad);
      optimizer.step();

      loss_sum += loss.value;
      ++batches;
      ++summary.steps;
    }
    summary.final_loss = static_cast<float>(loss_sum / std::max<int64_t>(batches, 1));
    if (opts.verbose)
      std::printf("  [%s] epoch %d/%d  loss %.5f\n", network.name().c_str(), epoch + 1,
                  opts.epochs, summary.final_loss);
  }
  return summary;
}

TrainingSummary train_sr_luma(nn::Module& network, const data::SyntheticDiv2k& dataset,
                              const SrTrainingOptions& opts) {
  Rng rng(opts.seed);
  network.init_weights(rng);
  nn::Adam optimizer(network.parameters(), opts.learning_rate);

  std::vector<int64_t> order(static_cast<size_t>(opts.train_size));
  std::iota(order.begin(), order.end(), 0);

  const int64_t hs = dataset.options().hr_size;
  const int64_t ls = hs / dataset.options().scale;

  TrainingSummary summary;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double loss_sum = 0.0;
    int64_t batches = 0;
    for (size_t first = 0; first + 1 < order.size(); first += static_cast<size_t>(opts.batch_size)) {
      const size_t count = std::min(static_cast<size_t>(opts.batch_size), order.size() - first);
      Tensor lr_rgb({static_cast<int64_t>(count), 3, ls, ls});
      Tensor hr_rgb({static_cast<int64_t>(count), 3, hs, hs});
      for (size_t i = 0; i < count; ++i) {
        const data::SrPair pair = dataset.get(order[first + i]);
        std::copy(pair.lr.data(), pair.lr.data() + 3 * ls * ls,
                  lr_rgb.data() + static_cast<int64_t>(i) * 3 * ls * ls);
        std::copy(pair.hr.data(), pair.hr.data() + 3 * hs * hs,
                  hr_rgb.data() + static_cast<int64_t>(i) * 3 * hs * hs);
      }
      const Tensor lr_y = models::luma_of(lr_rgb);
      const Tensor hr_y = models::luma_of(hr_rgb);

      network.zero_grad();
      const Tensor prediction = network.forward(lr_y);
      nn::LossResult loss = (opts.loss == SrLoss::kMae) ? nn::mae_loss(prediction, hr_y)
                                                        : nn::mse_loss(prediction, hr_y);
      network.backward(loss.grad);
      optimizer.step();

      loss_sum += loss.value;
      ++batches;
      ++summary.steps;
    }
    summary.final_loss = static_cast<float>(loss_sum / std::max<int64_t>(batches, 1));
    if (opts.verbose)
      std::printf("  [%s/luma] epoch %d/%d  loss %.5f\n", network.name().c_str(), epoch + 1,
                  opts.epochs, summary.final_loss);
  }
  return summary;
}

float evaluate_sr_psnr(nn::Module& network, const data::SyntheticDiv2k& dataset, int64_t first,
                       int64_t count) {
  double psnr_sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    const data::SrPair pair = dataset.get(first + i);
    const int64_t ls = dataset.options().hr_size / dataset.options().scale;
    Tensor out = network.forward(pair.lr.reshaped({1, 3, ls, ls}));
    out.clamp_(0.0f, 1.0f);
    psnr_sum += data::psnr(out, pair.hr.reshaped({1, 3, dataset.options().hr_size,
                                                  dataset.options().hr_size}));
  }
  return static_cast<float>(psnr_sum / static_cast<double>(count));
}

float evaluate_interpolation_psnr(preprocess::InterpolationKind kind,
                                  const data::SyntheticDiv2k& dataset, int64_t first,
                                  int64_t count) {
  double psnr_sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    const data::SrPair pair = dataset.get(first + i);
    const int64_t ls = dataset.options().hr_size / dataset.options().scale;
    const Tensor up =
        preprocess::upscale(pair.lr.reshaped({1, 3, ls, ls}), dataset.options().scale, kind);
    psnr_sum += data::psnr(up, pair.hr.reshaped({1, 3, dataset.options().hr_size,
                                                 dataset.options().hr_size}));
  }
  return static_cast<float>(psnr_sum / static_cast<double>(count));
}

}  // namespace sesr::core
