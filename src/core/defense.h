// The paper's defense pipeline (Fig. 1b):
//
//   adversarial image -> JPEG compression -> wavelet denoising -> x2 super
//   resolution -> classifier
//
// Training-free and model-agnostic: neither the SR network nor the classifier
// is adversarially trained, and the pipeline wraps any classifier unchanged.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "models/upscaler.h"
#include "preprocess/preprocess.h"

namespace sesr::core {

struct DefenseOptions {
  bool use_jpeg = true;  ///< Table III ablates this stage
  preprocess::JpegOptions jpeg{.quality = 75, .chroma_subsample = true};
  bool use_wavelet = true;
  preprocess::WaveletOptions wavelet{.family = preprocess::WaveletFamily::kDaubechies4,
                                     .levels = 2,
                                     .threshold_scale = 1.0f};
};

/// Preprocessing defense: denoise then upscale. The classifier itself stays
/// outside (see GrayBoxEvaluator) so one pipeline instance can defend any
/// model — the paper's model-agnostic property.
///
/// Serving note: when the upscaler is a NetworkUpscaler wrapping a network
/// that supports compiled inference (every SR model in the zoo), its SR
/// stage runs through the runtime (runtime::Session) rather than the
/// training API, so apply() is allocation-light there and safe to call
/// concurrently from multiple serving threads. A non-compilable network
/// falls back to Module::forward, which is NOT concurrency-safe.
///
/// Precision knob: calibrate_int8() quantises the SR stage (genuine integer
/// kernels, the paper's Ethos-U55 deployment arithmetic) so the gray-box
/// evaluator can score robustness under the int8 the hardware actually runs;
/// set_precision() flips between fp32 and int8 serving afterwards.
class DefensePipeline {
 public:
  DefensePipeline(std::shared_ptr<models::Upscaler> upscaler, DefenseOptions opts = {});

  /// Apply the full pipeline to an [N, 3, H, W] batch in [0,1]; returns the
  /// defended [N, 3, 2H, 2W] batch.
  [[nodiscard]] Tensor apply(const Tensor& images) const;

  /// Calibrate the SR stage's int8 artifact from representative *raw* LR
  /// batches (the pipeline applies its JPEG/wavelet stages first, so the
  /// observers see exactly the distribution the SR network serves) and
  /// switch SR serving to int8. Requires a NetworkUpscaler SR stage.
  void calibrate_int8(std::span<const Tensor> low_res_batches,
                      const quant::CalibrationOptions& opts = {});

  /// Serving precision of the SR stage (kFloat32 for interpolation
  /// upscalers). set_precision(kInt8) requires a prior calibrate_int8.
  void set_precision(runtime::Precision precision);
  [[nodiscard]] runtime::Precision precision() const;

  /// Row label for result tables (the upscaler's label).
  [[nodiscard]] std::string label() const { return upscaler_->label(); }

  [[nodiscard]] const DefenseOptions& options() const { return opts_; }
  [[nodiscard]] models::Upscaler& upscaler() { return *upscaler_; }
  [[nodiscard]] const models::Upscaler& upscaler() const { return *upscaler_; }

 private:
  std::shared_ptr<models::Upscaler> upscaler_;
  DefenseOptions opts_;
  preprocess::JpegCompressor jpeg_;
  preprocess::WaveletDenoiser wavelet_;
};

}  // namespace sesr::core
