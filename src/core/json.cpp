#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sesr::core {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return {parse_string()};
      case 't':
        if (consume_word("true")) return {true};
        fail("bad literal");
      case 'f':
        if (consume_word("false")) return {false};
        fail("bad literal");
      case 'n':
        if (consume_word("null")) return {nullptr};
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    if (consume('}')) return {std::move(object)};
    while (true) {
      std::string key = parse_string();
      expect(':');
      object.emplace(std::move(key), parse_value());
      if (consume('}')) break;
      expect(',');
    }
    return {std::move(object)};
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    if (consume(']')) return {std::move(array)};
    while (true) {
      array.push_back(parse_value());
      if (consume(']')) break;
      expect(',');
    }
    return {std::move(array)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) fail("bad \\u escape");
          // Our encoders only emit \u00xx control characters; decode those
          // and reject anything outside one byte (never produced by us).
          if (code < 0 || code > 0xFF) fail("unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_space();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a value");
    if (!std::isfinite(value)) fail("non-finite number");
    pos_ += static_cast<size_t>(end - begin);
    return {value};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return JsonParser(text).parse_document(); }

std::string json_number(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_number(int64_t value) { return std::to_string(value); }

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

const JsonObject& json_as_object(const JsonValue& value, const std::string& where) {
  if (const auto* object = std::get_if<JsonObject>(&value.value)) return *object;
  throw std::runtime_error("json: " + where + " is not an object");
}

const JsonArray& json_as_array(const JsonValue& value, const std::string& where) {
  if (const auto* array = std::get_if<JsonArray>(&value.value)) return *array;
  throw std::runtime_error("json: " + where + " is not an array");
}

double json_as_number(const JsonValue& value, const std::string& where) {
  if (const auto* number = std::get_if<double>(&value.value)) return *number;
  throw std::runtime_error("json: " + where + " is not a number");
}

double json_get_number(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  if (it == object.end()) return 0.0;  // absent counters read as zero
  if (const auto* value = std::get_if<double>(&it->second.value)) return *value;
  throw std::runtime_error(std::string("json: field ") + name + " is not a number");
}

int64_t json_get_int(const JsonObject& object, const char* name) {
  return static_cast<int64_t>(json_get_number(object, name));
}

std::string json_get_string(const JsonObject& object, const char* name) {
  const auto it = object.find(name);
  if (it == object.end()) return {};  // absent strings read as empty
  if (const auto* value = std::get_if<std::string>(&it->second.value)) return *value;
  throw std::runtime_error(std::string("json: field ") + name + " is not a string");
}

}  // namespace sesr::core
