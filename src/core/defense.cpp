#include "core/defense.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace sesr::core {

DefensePipeline::DefensePipeline(std::shared_ptr<models::Upscaler> upscaler, DefenseOptions opts)
    : upscaler_(std::move(upscaler)), opts_(opts), jpeg_(opts_.jpeg), wavelet_(opts_.wavelet) {
  if (!upscaler_) throw std::invalid_argument("DefensePipeline: null upscaler");
}

Tensor DefensePipeline::apply(const Tensor& images) const {
  Tensor x = images;
  if (opts_.use_jpeg) x = jpeg_.apply(x);
  if (opts_.use_wavelet) x = wavelet_.apply(x);
  return upscaler_->upscale(x);
}

namespace {

models::NetworkUpscaler& require_network_upscaler(models::Upscaler& upscaler,
                                                  const char* who) {
  auto* network = dynamic_cast<models::NetworkUpscaler*>(&upscaler);
  if (network == nullptr)
    throw std::invalid_argument(std::string(who) +
                                ": the SR stage is not a NetworkUpscaler");
  return *network;
}

}  // namespace

void DefensePipeline::calibrate_int8(std::span<const Tensor> low_res_batches,
                                     const quant::CalibrationOptions& opts) {
  models::NetworkUpscaler& network =
      require_network_upscaler(*upscaler_, "DefensePipeline::calibrate_int8");
  // Calibrate on what the SR network actually consumes: the batches after
  // the pipeline's own JPEG / wavelet stages.
  std::vector<Tensor> transformed;
  transformed.reserve(low_res_batches.size());
  for (const Tensor& batch : low_res_batches) {
    Tensor x = batch;
    if (opts_.use_jpeg) x = jpeg_.apply(x);
    if (opts_.use_wavelet) x = wavelet_.apply(x);
    transformed.push_back(std::move(x));
  }
  network.calibrate_int8(transformed, opts);
}

void DefensePipeline::set_precision(runtime::Precision precision) {
  require_network_upscaler(*upscaler_, "DefensePipeline::set_precision")
      .set_precision(precision);
}

runtime::Precision DefensePipeline::precision() const {
  auto* network = dynamic_cast<const models::NetworkUpscaler*>(upscaler_.get());
  return network != nullptr ? network->precision() : runtime::Precision::kFloat32;
}

}  // namespace sesr::core
