#include "core/defense.h"

#include <stdexcept>

namespace sesr::core {

DefensePipeline::DefensePipeline(std::shared_ptr<models::Upscaler> upscaler, DefenseOptions opts)
    : upscaler_(std::move(upscaler)), opts_(opts), jpeg_(opts_.jpeg), wavelet_(opts_.wavelet) {
  if (!upscaler_) throw std::invalid_argument("DefensePipeline: null upscaler");
}

Tensor DefensePipeline::apply(const Tensor& images) const {
  Tensor x = images;
  if (opts_.use_jpeg) x = jpeg_.apply(x);
  if (opts_.use_wavelet) x = wavelet_.apply(x);
  return upscaler_->upscale(x);
}

}  // namespace sesr::core
