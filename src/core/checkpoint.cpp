#include "core/checkpoint.h"

#include <filesystem>

#include "core/config.h"
#include "tensor/serialize.h"

namespace sesr::core {

std::string cache_dir() { return config_string("SESR_CACHE_DIR"); }

namespace {

std::string path_for(const std::string& key) { return cache_dir() + "/" + key + ".sesr"; }

}  // namespace

bool load_checkpoint(nn::Module& model, const std::string& key) {
  const std::string path = path_for(key);
  if (!std::filesystem::exists(path)) return false;
  try {
    model.set_parameter_values(load_tensors(path));
    return true;
  } catch (const std::exception&) {
    return false;  // stale or mismatched checkpoint: caller retrains
  }
}

void save_checkpoint(nn::Module& model, const std::string& key) {
  std::filesystem::create_directories(cache_dir());
  save_tensors(path_for(key), model.parameter_values());
}

}  // namespace sesr::core
