// Weight checkpointing for benches and examples.
//
// Benches train several networks; caching trained weights under a content key
// (model name + dataset/training configuration) makes repeated bench runs and
// the example programs fast. The cache directory defaults to
// "sesr_cache/" under the current working directory and can be moved with the
// SESR_CACHE_DIR environment variable. Delete the directory to force
// retraining.
#pragma once

#include <string>

#include "nn/module.h"

namespace sesr::core {

/// Directory used by save/load_checkpoint (created on first save).
std::string cache_dir();

/// True if a checkpoint named `key` exists and its parameter shapes match
/// `model`, in which case the parameters are loaded into `model`.
bool load_checkpoint(nn::Module& model, const std::string& key);

/// Persist `model`'s parameters under `key`.
void save_checkpoint(nn::Module& model, const std::string& key);

}  // namespace sesr::core
