#include "core/config.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace sesr::core {

const char* config_type_name(ConfigType type) {
  switch (type) {
    case ConfigType::kInt64: return "int";
    case ConfigType::kDouble: return "float";
    case ConfigType::kBool: return "bool";
    case ConfigType::kString: return "string";
  }
  return "?";
}

namespace {

constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();

ConfigSpec int_spec(std::string name, std::optional<int64_t> default_int, int64_t min_int,
                    int64_t max_int, std::string default_text, std::string description) {
  ConfigSpec spec;
  spec.name = std::move(name);
  spec.type = ConfigType::kInt64;
  spec.default_int = default_int;
  spec.min_int = min_int;
  spec.max_int = max_int;
  spec.default_text = std::move(default_text);
  spec.description = std::move(description);
  return spec;
}

ConfigSpec double_spec(std::string name, double default_double, double min_double,
                       double max_double, std::string default_text, std::string description) {
  ConfigSpec spec;
  spec.name = std::move(name);
  spec.type = ConfigType::kDouble;
  spec.default_double = default_double;
  spec.min_double = min_double;
  spec.max_double = max_double;
  spec.default_text = std::move(default_text);
  spec.description = std::move(description);
  return spec;
}

ConfigSpec bool_spec(std::string name, bool default_bool, std::string description) {
  ConfigSpec spec;
  spec.name = std::move(name);
  spec.type = ConfigType::kBool;
  spec.default_bool = default_bool;
  spec.default_text = default_bool ? "true" : "false";
  spec.description = std::move(description);
  return spec;
}

ConfigSpec string_spec(std::string name, std::string default_string, std::string default_text,
                       std::string description) {
  ConfigSpec spec;
  spec.name = std::move(name);
  spec.type = ConfigType::kString;
  spec.default_string = std::move(default_string);
  spec.default_text = std::move(default_text);
  spec.description = std::move(description);
  return spec;
}

}  // namespace

const std::vector<ConfigSpec>& config_specs() {
  static const std::vector<ConfigSpec> specs = {
      int_spec("SESR_NUM_THREADS", std::nullopt, 1, 4096, "hardware concurrency",
               "Worker threads for `parallel_for` (conv/GEMM/pipeline loops). Workers live "
               "in a lazily-started persistent pool; callers help execute their own loops, "
               "so concurrent serving threads share the pool without deadlock. Read once, "
               "at pool start."),
      int_spec("SESR_SESSION_CAP", kUnlimited, 0, kUnlimited, "unlimited",
               "Hard cap on idle `runtime::Session`s retained per input shape by "
               "`NetworkUpscaler`'s pool (sessions own full activation arenas). `0` "
               "disables retention entirely (memory-constrained deployments); unset, "
               "retention is bounded by the observed serving parallelism. Re-read per "
               "session return."),
      string_spec("SESR_CACHE_DIR", "sesr_cache", "`./sesr_cache`",
                  "Where benches/examples cache trained weights. Delete it to force "
                  "retraining."),
      bool_spec("SESR_BENCH_FAST", false,
                "Smoke-scale bench runs: smaller training sets and evaluation pools, "
                "throughput gates recorded but not enforced. Qualitative shapes still "
                "hold; absolute numbers shift."),
      string_spec("SESR_BENCH_JSON_DIR", ".", "working directory",
                  "Where benches write their machine-readable `BENCH_<name>.json` "
                  "metrics."),
      double_spec("SESR_SOAK_SECONDS", 1.5, 0.05, 86400.0, "1.5",
                  "Wall-clock length of the fault-injection soak test's load phase "
                  "(`ctest -L soak`). PR CI runs the smoke default; the nightly job "
                  "scales it past two minutes."),
      int_spec("SESR_SOAK_SEED", 20260809, 0, kUnlimited, "20260809",
               "Seed for the soak test's load generators, fault schedule, and swap "
               "cadence — one seed reproduces one soak run."),
      int_spec("SESR_DIST_WINDOW", 64, 1, 65536, "64",
               "Per-shard in-flight window of `dist::Frontend`: requests outstanding to "
               "one shard before submit() blocks (backpressure) and try_submit() "
               "refuses. Size it below each shard's queue capacity so shards never "
               "refuse window'd work."),
      int_spec("SESR_DIST_HEARTBEAT_MS", 100, 5, 60000, "100",
               "Frontend heartbeat period in milliseconds. Each tick pings every live "
               "shard; pongs carry the shard's ServerStats JSON."),
      int_spec("SESR_DIST_HEARTBEAT_MISSES", 5, 1, 1000, "5",
               "Consecutive unanswered heartbeats before the frontend declares a shard "
               "dead, removes it from the ring, and re-routes its in-flight requests. "
               "Detection latency ≈ misses x heartbeat period."),
      int_spec("SESR_DIST_TILE_THRESHOLD", 0, 0, kUnlimited, "0 (off)",
               "LR pixel count (H*W) at or above which the frontend splits a request "
               "into row-band tiles with halo exchange and fans them out across "
               "shards. 0 disables tile-split. Only models with a registered halo "
               "are split."),
      int_spec("SESR_DIST_TILE_MAX", 4, 1, 64, "4",
               "Max tiles one request splits into (also capped by the live shard "
               "count and the image height)."),
      string_spec("SESR_SHARD_BIN", "", "build's `sesr_shard` target",
                  "Path to the `sesr_shard` worker binary used when spawning local "
                  "shard processes (tests, benches, `dist::LocalCluster`). Unset, the "
                  "build-time target location is used."),
      string_spec("SESR_KERNEL_VARIANT", "", "`native` (strongest cpuid tier)",
                  "Forces the kernel tier (`scalar`, `avx2`, `avx512vnni`, `jit`; "
                  "clamped to what the CPU and build support). Read at `Program` "
                  "compile time by the variant-selection pass — already-compiled "
                  "programs keep their recorded tier. `jit` layers plan-compile-time "
                  "copy-and-patch stencils on the strongest SIMD tier, falling back "
                  "per op when no stencil fits. Int8 output is bit-exact across "
                  "tiers; fp32 is bit-identical by the fixed lane-order contract."),
      int_spec("SESR_JIT_ARENA_BYTES", int64_t{16} << 20, int64_t{64} << 10,
               int64_t{1} << 30, "16M",
               "Ceiling on one compiled program's JIT code arena (patched stencil "
               "code + baked LUT blobs). A program whose specialized kernels would "
               "exceed it JIT-compiles what fits and falls back to the base SIMD "
               "tier for the rest."),
      string_spec("SESR_JIT_DISABLE_STENCILS", "", "empty (all stencils usable)",
                  "Comma-separated stencil deny-list for the JIT tier, matched "
                  "against bare stencil names (`conv16_k3_r4_a1`), "
                  "flavor-qualified names (`vnni:conv16_k3_r4_a1`), or `all`. "
                  "Denied stencils are treated as missing, exercising the per-op "
                  "fallback ladder — a test/debug seam, not an operator knob."),
      bool_spec("SESR_TRACE", false,
                "Request-scoped tracing: mints a trace id at the serving edge, "
                "propagates it over the shard wire, and records queue/batch/"
                "session/reply spans into per-thread flight-recorder rings, "
                "drained on demand to Chrome trace JSON (Perfetto-loadable). "
                "Cached after first read; `obs::refresh_trace_config()` re-reads."),
      int_spec("SESR_TRACE_RING_BYTES", int64_t{1} << 20, int64_t{4} << 10,
               int64_t{64} << 20, "1M",
               "Span ring-buffer bytes per recording thread (64 bytes/span, "
               "overwrite-oldest). Fixed memory: tracing never allocates on the "
               "serving path. Read when a thread records its first span."),
      string_spec("SESR_TRACE_DIR", "", "empty (no files written)",
                  "Directory where `obs::write_trace_file()` dumps each process's "
                  "spans as `trace_<pid>.json` (Chrome trace format). Shard workers "
                  "dump on clean shutdown; merge files with `sesr_tracecat`."),
      bool_spec("SESR_PROFILE_OPS", false,
                "Sampled per-op runtime profiling: timed Program runs accumulate "
                "per-op/per-kernel-tier nanoseconds and call counts, surfaced in "
                "`Program::dump()`, the metrics registry, and bench JSON. Cached "
                "after first read; `obs::refresh_profile_config()` re-reads."),
      int_spec("SESR_PROFILE_SAMPLE", 8, 1, int64_t{1} << 20, "8",
               "Profile every Nth session run when SESR_PROFILE_OPS is on. 1 times "
               "every run; larger values shrink overhead on hot serving paths."),
  };
  return specs;
}

const ConfigSpec& config_spec(std::string_view name) {
  for (const ConfigSpec& spec : config_specs())
    if (spec.name == name) return spec;
  throw std::invalid_argument("config_spec: unregistered knob " + std::string(name));
}

namespace {

/// Binary suffix multiplier at `text[pos]`; advances `pos` past the suffix
/// (and an optional trailing 'B'). 1 when there is no suffix.
int64_t suffix_multiplier(std::string_view text, size_t& pos) {
  if (pos >= text.size()) return 1;
  int64_t multiplier = 1;
  switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
    case 'K': multiplier = int64_t{1} << 10; break;
    case 'M': multiplier = int64_t{1} << 20; break;
    case 'G': multiplier = int64_t{1} << 30; break;
    default: return 1;
  }
  ++pos;
  if (pos < text.size() && std::toupper(static_cast<unsigned char>(text[pos])) == 'B') ++pos;
  return multiplier;
}

std::string_view trimmed(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

}  // namespace

std::optional<int64_t> parse_config_int64(std::string_view text) {
  text = trimmed(text);
  if (text.empty()) return std::nullopt;
  const std::string owned(text);  // strtoll needs a terminator
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(owned.c_str(), &end, 10);
  if (end == owned.c_str() || errno == ERANGE) return std::nullopt;
  size_t pos = static_cast<size_t>(end - owned.c_str());
  const int64_t multiplier = suffix_multiplier(owned, pos);
  if (pos != owned.size()) return std::nullopt;  // trailing junk
  // Overflow check on the suffix multiply ("99999999G" must reject, not wrap).
  if (multiplier > 1) {
    if (value > kUnlimited / multiplier || value < std::numeric_limits<int64_t>::min() / multiplier)
      return std::nullopt;
  }
  return static_cast<int64_t>(value) * multiplier;
}

std::optional<double> parse_config_double(std::string_view text) {
  text = trimmed(text);
  if (text.empty()) return std::nullopt;
  const std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || errno == ERANGE) return std::nullopt;
  size_t pos = static_cast<size_t>(end - owned.c_str());
  const double multiplier = static_cast<double>(suffix_multiplier(owned, pos));
  if (pos != owned.size()) return std::nullopt;
  const double scaled = value * multiplier;
  if (!std::isfinite(scaled)) return std::nullopt;
  return scaled;
}

std::optional<bool> parse_config_bool(std::string_view text) {
  std::string lower(trimmed(text));
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "1" || lower == "true" || lower == "on" || lower == "yes") return true;
  if (lower == "0" || lower == "false" || lower == "off" || lower == "no") return false;
  return std::nullopt;
}

namespace {

const char* env_value(const ConfigSpec& spec) { return std::getenv(spec.name.c_str()); }

void require_type(const ConfigSpec& spec, ConfigType type) {
  if (spec.type != type)
    throw std::invalid_argument("config: " + spec.name + " is a " +
                                config_type_name(spec.type) + " knob, read as " +
                                config_type_name(type));
}

}  // namespace

int64_t config_int64(std::string_view name, int64_t fallback) {
  const ConfigSpec& spec = config_spec(name);
  require_type(spec, ConfigType::kInt64);
  if (const char* env = env_value(spec))
    if (const std::optional<int64_t> parsed = parse_config_int64(env))
      return std::clamp(*parsed, spec.min_int, spec.max_int);
  return std::clamp(fallback, spec.min_int, spec.max_int);
}

int64_t config_int64(std::string_view name) {
  const ConfigSpec& spec = config_spec(name);
  require_type(spec, ConfigType::kInt64);
  if (!spec.default_int.has_value())
    throw std::invalid_argument("config: " + spec.name +
                                " has a run-time default — pass a fallback");
  return config_int64(name, *spec.default_int);
}

double config_double(std::string_view name) {
  const ConfigSpec& spec = config_spec(name);
  require_type(spec, ConfigType::kDouble);
  if (const char* env = env_value(spec))
    if (const std::optional<double> parsed = parse_config_double(env))
      return std::clamp(*parsed, spec.min_double, spec.max_double);
  return spec.default_double;
}

bool config_bool(std::string_view name) {
  const ConfigSpec& spec = config_spec(name);
  require_type(spec, ConfigType::kBool);
  if (const char* env = env_value(spec))
    if (const std::optional<bool> parsed = parse_config_bool(env)) return *parsed;
  return spec.default_bool;
}

std::string config_string(std::string_view name) {
  const ConfigSpec& spec = config_spec(name);
  require_type(spec, ConfigType::kString);
  if (const char* env = env_value(spec); env != nullptr && env[0] != '\0') return env;
  return spec.default_string;
}

namespace {

std::string range_text(const ConfigSpec& spec) {
  const auto int_text = [](int64_t v) {
    return v == kUnlimited ? std::string("unlimited") : std::to_string(v);
  };
  switch (spec.type) {
    case ConfigType::kInt64: {
      // Append-style on purpose: `"[" + std::string&&` chains trip GCC 12's
      // -Wrestrict false positive (PR 105651) once inlined into the table
      // loop below, and the library builds with -Werror in CI.
      std::string text = "[";
      text += int_text(spec.min_int);
      text += ", ";
      text += int_text(spec.max_int);
      text += "]";
      return text;
    }
    case ConfigType::kDouble: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "[%g, %g]", spec.min_double, spec.max_double);
      return buffer;
    }
    case ConfigType::kBool:
    case ConfigType::kString:
      return "—";
  }
  return "—";
}

}  // namespace

std::string config_markdown_table() {
  std::string table =
      "| Variable | Type | Range | Default | Effect |\n"
      "|---|---|---|---|---|\n";
  for (const ConfigSpec& spec : config_specs()) {
    table += "| `" + spec.name + "` | " + config_type_name(spec.type) + " | " +
             range_text(spec) + " | " + spec.default_text + " | " + spec.description +
             " |\n";
  }
  return table;
}

}  // namespace sesr::core
