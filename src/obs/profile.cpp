#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"

namespace sesr::obs {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = config not read yet
std::atomic<int64_t> g_sample_every{8};

std::mutex& profiles_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<ProgramProfile*>& profiles() {
  static auto* live = new std::vector<ProgramProfile*>();
  return *live;
}

}  // namespace

bool profile_enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    refresh_profile_config();
    state = g_enabled.load(std::memory_order_relaxed);
  }
  return state > 0;
}

int64_t profile_sample_every() { return g_sample_every.load(std::memory_order_relaxed); }

void refresh_profile_config() {
  g_sample_every.store(std::max<int64_t>(core::config_int64("SESR_PROFILE_SAMPLE"), 1),
                       std::memory_order_relaxed);
  g_enabled.store(core::config_bool("SESR_PROFILE_OPS") ? 1 : 0, std::memory_order_relaxed);
}

int64_t profile_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProgramProfile::ProgramProfile(std::vector<OpProfileInfo> ops)
    : info_(std::move(ops)), cells_(new Cell[std::max<size_t>(info_.size(), 1)]) {
  std::lock_guard<std::mutex> lock(profiles_mutex());
  profiles().push_back(this);
}

ProgramProfile::~ProgramProfile() {
  std::lock_guard<std::mutex> lock(profiles_mutex());
  auto& live = profiles();
  live.erase(std::remove(live.begin(), live.end(), this), live.end());
}

bool ProgramProfile::sample_this_run() {
  const int64_t run = runs_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (run % profile_sample_every() != 0) return false;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

OpProfileRow ProgramProfile::row(size_t op) const {
  OpProfileRow row;
  row.name = info_[op].name;
  row.tier = info_[op].tier;
  row.calls = cells_[op].calls.load(std::memory_order_relaxed);
  row.ns = cells_[op].ns.load(std::memory_order_relaxed);
  return row;
}

std::vector<OpProfileRow> profile_aggregate() {
  std::map<std::pair<std::string, std::string>, OpProfileRow> merged;
  {
    std::lock_guard<std::mutex> lock(profiles_mutex());
    for (const ProgramProfile* profile : profiles()) {
      for (size_t op = 0; op < profile->size(); ++op) {
        OpProfileRow row = profile->row(op);
        if (row.calls == 0) continue;
        auto& slot = merged[{row.name, row.tier}];
        slot.name = row.name;
        slot.tier = row.tier;
        slot.calls += row.calls;
        slot.ns += row.ns;
      }
    }
  }
  std::vector<OpProfileRow> rows;
  rows.reserve(merged.size());
  for (auto& [key, row] : merged) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const OpProfileRow& a, const OpProfileRow& b) { return a.ns > b.ns; });
  return rows;
}

void profile_export(Registry& registry) {
  for (const OpProfileRow& row : profile_aggregate()) {
    const std::string labels = "|op=" + row.name + ",tier=" + row.tier;
    registry.gauge("profile.op_ns" + labels).set(row.ns);
    registry.gauge("profile.op_calls" + labels).set(row.calls);
  }
}

}  // namespace sesr::obs
