// Request-scoped distributed tracing with flight-recorder span storage.
//
// A TraceContext (trace id + parent span id) is minted at the edge
// (Frontend::submit / Server::submit), carried through SubmitOptions,
// propagated over the SDW1 wire as an optional trailing extension, and used
// to stamp spans at every stage of a request's life: queue wait, batch
// formation, tile fan-out / halo stitch, session run, reply. Span ids embed
// the pid, and timestamps come from CLOCK_MONOTONIC — the same clock across
// every process on a host — so frontend and shard spans of one trace align
// on a shared timeline without any clock-sync protocol.
//
// Storage is flight-recorder style: each recording thread owns a lock-free
// ring of fixed-size slots (64 bytes each, SESR_TRACE_RING_BYTES per
// thread), overwriting oldest on wrap. Recording is a handful of relaxed
// atomic stores; no allocation, no locks, no syscalls. drain_spans() copies
// every thread's ring out under a registration mutex; the resulting records
// render to Chrome trace-event JSON ("X" complete events) loadable directly
// in Perfetto / chrome://tracing. With SESR_TRACE unset the whole layer is a
// single predictable branch per call site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sesr::obs {

/// Identity of one request's trace: the trace id plus the span id the next
/// child span should be parented to. {0, 0} means "not traced" and makes
/// every downstream recording call a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  [[nodiscard]] explicit operator bool() const { return trace_id != 0; }
};

/// Cached read of SESR_TRACE. The first call (and every
/// refresh_trace_config()) re-reads the typed config; afterwards it is one
/// relaxed atomic load.
[[nodiscard]] bool trace_enabled();

/// Re-read SESR_TRACE / SESR_TRACE_RING_BYTES from the environment. Rings
/// already allocated keep their old capacity; new threads pick up the new
/// size.
void refresh_trace_config();

/// Monotonic nanoseconds (CLOCK_MONOTONIC) — comparable across processes on
/// one host, which is what makes cross-process span nesting line up.
[[nodiscard]] int64_t trace_now_ns();

/// Mint a fresh trace root context ({new id, span 0}); {0, 0} when tracing
/// is disabled. Ids embed the pid so concurrent processes never collide.
[[nodiscard]] TraceContext start_trace();

/// Mint a process-unique span id (nonzero).
[[nodiscard]] uint64_t next_span_id();

/// Record one completed span into this thread's ring. No-op when trace_id
/// is 0. `name` is truncated to 24 bytes (ring slots are fixed-size).
void record_span(uint64_t trace_id, uint64_t span_id, uint64_t parent_span, const char* name,
                 int64_t start_ns, int64_t end_ns);

/// RAII span: started at construction (minting a span id under `parent`),
/// recorded at destruction or end(). Inert when parent is untraced.
class Span {
 public:
  Span() = default;
  Span(const TraceContext& parent, const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void end();

  /// Context for children of this span: {trace id, this span's id}.
  [[nodiscard]] const TraceContext& context() const { return ctx_; }

 private:
  TraceContext ctx_;
  uint64_t parent_span_ = 0;
  int64_t start_ns_ = 0;
  const char* name_ = nullptr;
};

struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t tid = 0;  ///< recorder thread (ring registration order, 1-based)
  int32_t pid = 0;
  std::string name;
};

/// Copy every thread's ring out, oldest-first per thread. Does not clear the
/// rings (a flight recorder keeps flying); records with a torn/blank slot
/// are skipped.
[[nodiscard]] std::vector<SpanRecord> drain_spans();

/// Render records as a Chrome trace-event JSON document ({"traceEvents":
/// [...]}) — "X" complete events with microsecond ts/dur, exact ids carried
/// in args as strings.
[[nodiscard]] std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

/// drain_spans() + chrome_trace_json().
[[nodiscard]] std::string drain_chrome_trace();

/// Parse a chrome_trace_json document (or a merge of several) back into
/// records. Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<SpanRecord> parse_chrome_trace(const std::string& json);

/// Structural nesting check: every span whose parent is present must share
/// its trace id and lie within the parent's [start, end] window. Returns
/// human-readable violations (empty = well-nested).
[[nodiscard]] std::vector<std::string> validate_span_nesting(const std::vector<SpanRecord>& spans);

/// Write this process's spans as Chrome JSON to
/// $SESR_TRACE_DIR/trace_<pid>.json (directory created best-effort).
/// Returns the path written, or "" when SESR_TRACE_DIR is unset.
std::string write_trace_file();

/// Test seam: zero every registered ring (records only; rings and their
/// thread registrations survive).
void clear_trace_buffers();

}  // namespace sesr::obs
