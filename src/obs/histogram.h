// Lock-cheap, mergeable histogram — the serving stack's one histogram type.
//
// record_us() is a single relaxed atomic increment into a log-linear bucket
// (HdrHistogram-style: one octave per power of two, kSubBuckets linear
// sub-buckets per octave), so serving threads pay a handful of nanoseconds
// and never contend a lock. Quantile queries walk the bucket array and
// return the geometric midpoint of the bucket holding the requested rank —
// values are exact below kSubBuckets microseconds and within one sub-bucket
// (< ~9% relative error) above, which is plenty for p50/p95/p99 SLO
// reporting. snapshot() under concurrent record() is a consistent-enough
// view: counters are read individually, so a snapshot races only with the
// samples landing during the walk.
//
// Snapshots carry the raw mergeable state (sum, max, sparse non-zero
// buckets) alongside the derived summary, so per-shard histograms can be
// combined into a fleet view: Snapshot::merge is associative and commutative
// and — because bucket boundaries are fixed and counts are integers — a
// merge across any partition of the samples lands in exactly the buckets a
// single histogram over all samples would have.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace sesr::obs {

class Histogram {
 public:
  /// Aggregate view of everything recorded so far. The *_ms fields are the
  /// derived summary; count/sum_us/max_us/buckets are the raw state a merge
  /// operates on (buckets holds only non-zero (index, count) pairs,
  /// ascending by index).
  struct Snapshot {
    int64_t count = 0;
    double mean_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    int64_t sum_us = 0;
    int64_t max_us = 0;
    std::vector<std::pair<int32_t, int64_t>> buckets;

    /// Fold another snapshot into this one (counts and buckets sum, maxima
    /// take the max) and recompute the derived summary fields.
    void merge(const Snapshot& other);

    /// Quantile in milliseconds over the sparse buckets (nearest-rank,
    /// clamped to max_us); 0 when empty. Matches Histogram::quantile_ms.
    [[nodiscard]] double quantile_ms(double q) const;

    /// Recompute mean/max/p50/p95/p99 from the raw state (after a merge or
    /// a parse that filled only the raw fields).
    void finalize();
  };

  /// Record one sample in microseconds. Negative values clamp to 0.
  void record_us(int64_t us);

  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Quantile in milliseconds (q in [0, 1]); 0 when nothing was recorded.
  [[nodiscard]] double quantile_ms(double q) const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 linear sub-buckets per octave
  static constexpr int64_t kSubBuckets = int64_t{1} << kSubBucketBits;
  // Octaves above the linear range; covers values up to 2^40 us (~13 days).
  static constexpr int kOctaves = 40 - kSubBucketBits;
  static constexpr int kBuckets = static_cast<int>(kSubBuckets) * (kOctaves + 1);

  [[nodiscard]] static int bucket_index(int64_t us);
  /// Representative value (us) of a bucket: exact in the linear range,
  /// geometric midpoint of the bucket's value span above it.
  [[nodiscard]] static double bucket_value_us(int index);

  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
  std::atomic<int64_t> max_us_{0};
};

}  // namespace sesr::obs
