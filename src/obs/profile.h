// Sampled per-op runtime profiler for Program execution.
//
// Each Program lazily owns one ProgramProfile: a fixed array of per-op cells
// (relaxed atomic call count + accumulated nanoseconds) labeled with the
// op's kind and kernel tier (scalar/avx2/vnni/jit). Session::execute asks
// sample_this_run() once per run — every Nth run is timed (SESR_PROFILE_SAMPLE)
// when SESR_PROFILE_OPS is on — and records one interval per op on sampled
// runs. When profiling is off the whole hook is a single always-false branch
// per run plus one null check per op.
//
// Live profiles self-register in a process-wide list so profile_aggregate()
// can merge rows across every program/session into the hot-op view that
// Program::dump(), the metrics registry, and the bench harness surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sesr::obs {

class Registry;

/// Cached read of SESR_PROFILE_OPS (refresh_profile_config re-reads).
[[nodiscard]] bool profile_enabled();

/// Cached read of SESR_PROFILE_SAMPLE, clamped to >= 1.
[[nodiscard]] int64_t profile_sample_every();

/// Re-read the SESR_PROFILE_* knobs from the environment.
void refresh_profile_config();

/// Monotonic nanoseconds for timing op intervals.
[[nodiscard]] int64_t profile_now_ns();

/// Immutable per-op labels, fixed at profile construction.
struct OpProfileInfo {
  std::string name;  ///< op kind, e.g. "qconv2d"
  std::string tier;  ///< kernel tier serving it, e.g. "avx2", "jit"
};

/// One aggregated row: totals for an (op name, tier) pair or a single op.
struct OpProfileRow {
  std::string name;
  std::string tier;
  int64_t calls = 0;
  int64_t ns = 0;
};

class ProgramProfile {
 public:
  explicit ProgramProfile(std::vector<OpProfileInfo> ops);
  ~ProgramProfile();
  ProgramProfile(const ProgramProfile&) = delete;
  ProgramProfile& operator=(const ProgramProfile&) = delete;

  /// Count a run; true when this run should be timed (every Nth while
  /// SESR_PROFILE_OPS is on).
  [[nodiscard]] bool sample_this_run();

  void record(size_t op, int64_t ns) {
    cells_[op].calls.fetch_add(1, std::memory_order_relaxed);
    cells_[op].ns.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] size_t size() const { return info_.size(); }
  [[nodiscard]] OpProfileRow row(size_t op) const;
  [[nodiscard]] int64_t runs_sampled() const { return sampled_.load(std::memory_order_relaxed); }

 private:
  struct Cell {
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> ns{0};
  };

  std::vector<OpProfileInfo> info_;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<int64_t> runs_{0};
  std::atomic<int64_t> sampled_{0};
};

/// Merge every live profile's rows by (name, tier), sorted by total ns
/// descending.
[[nodiscard]] std::vector<OpProfileRow> profile_aggregate();

/// Publish the aggregate into `registry` as gauges
/// `profile.op_ns|op=<name>,tier=<tier>` / `profile.op_calls|...` (set, not
/// added, so repeated exports stay idempotent).
void profile_export(Registry& registry);

}  // namespace sesr::obs
