#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sesr::obs {

int Histogram::bucket_index(int64_t us) {
  if (us < kSubBuckets) return static_cast<int>(us);  // exact linear range
  // Octave = position of the highest set bit past the linear range; the
  // kSubBucketBits bits below that bit select the linear sub-bucket, so a
  // bucket at (octave, sub) spans [(kSubBuckets + sub) << octave,
  // (kSubBuckets + sub + 1) << octave) — matching bucket_value_us exactly.
  const int highest = 63 - std::countl_zero(static_cast<uint64_t>(us));
  const int octave = std::min(highest - kSubBucketBits, kOctaves - 1);
  const int64_t sub = (us >> octave) & (kSubBuckets - 1);
  return static_cast<int>((octave + 1) * kSubBuckets + sub);
}

double Histogram::bucket_value_us(int index) {
  const int64_t octave_block = index / kSubBuckets;
  const int64_t sub = index % kSubBuckets;
  if (octave_block == 0) return static_cast<double>(sub);
  const int shift = static_cast<int>(octave_block) - 1;
  const double lo = std::ldexp(static_cast<double>(kSubBuckets + sub), shift);
  const double hi = std::ldexp(static_cast<double>(kSubBuckets + sub + 1), shift);
  return std::sqrt(lo * hi);  // geometric midpoint of the bucket's span
}

void Histogram::record_us(int64_t us) {
  us = std::max<int64_t>(us, 0);
  buckets_[static_cast<size_t>(bucket_index(us))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  int64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen && !max_us_.compare_exchange_weak(seen, us, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile_ms(double q) const {
  const int64_t total = count_.load(std::memory_order_relaxed);
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based), nearest-rank convention.
  const int64_t rank = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  // A bucket's geometric midpoint can overshoot the true extreme; clamp so
  // a reported quantile never exceeds the recorded maximum.
  const double max_us = static_cast<double>(max_us_.load(std::memory_order_relaxed));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank) return std::min(bucket_value_us(i), max_us) / 1000.0;
  }
  // Samples recorded between the count_ read and the walk: report the max.
  return static_cast<double>(max_us_.load(std::memory_order_relaxed)) / 1000.0;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  snap.max_us = max_us_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t n = buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (n != 0) snap.buckets.emplace_back(i, n);
  }
  snap.finalize();
  return snap;
}

double Histogram::Snapshot::quantile_ms(double q) const {
  // Snapshot-side mirror of Histogram::quantile_ms over the sparse buckets.
  // Rank against the bucket total (not `count`) so a merged/parsed snapshot
  // whose buckets and count disagree still walks consistently.
  int64_t total = 0;
  for (const auto& [index, n] : buckets) total += n;
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  const double max = static_cast<double>(max_us);
  int64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= rank) return std::min(Histogram::bucket_value_us(index), max) / 1000.0;
  }
  return max / 1000.0;
}

void Histogram::Snapshot::finalize() {
  if (count <= 0) {
    mean_ms = max_ms = p50_ms = p95_ms = p99_ms = 0.0;
    return;
  }
  mean_ms = static_cast<double>(sum_us) / static_cast<double>(count) / 1000.0;
  max_ms = static_cast<double>(max_us) / 1000.0;
  p50_ms = quantile_ms(0.50);
  p95_ms = quantile_ms(0.95);
  p99_ms = quantile_ms(0.99);
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  count += other.count;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
  // Merge two ascending sparse bucket lists, summing shared indices.
  std::vector<std::pair<int32_t, int64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t a = 0;
  size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() || (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() || other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first, buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
  finalize();
}

}  // namespace sesr::obs
