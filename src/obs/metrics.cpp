#include "obs/metrics.h"

#include <utility>
#include <vector>

#include "core/json.h"

namespace sesr::obs {

namespace {

using core::JsonArray;
using core::JsonObject;
using core::JsonValue;

std::string histogram_to_json(const Histogram::Snapshot& snap) {
  core::JsonObjectWriter out;
  out.field("count", snap.count);
  out.field("sum_us", snap.sum_us);
  out.field("max_us", snap.max_us);
  std::string buckets = "[";
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    if (i > 0) buckets += ", ";
    buckets += '[';
    buckets += core::json_number(static_cast<int64_t>(snap.buckets[i].first));
    buckets += ", ";
    buckets += core::json_number(snap.buckets[i].second);
    buckets += ']';
  }
  buckets += "]";
  out.field("buckets", buckets);
  // Derived summary, for human readers of the JSON; the parser recomputes
  // these from the raw fields, so they never drift from the buckets.
  out.field("mean_ms", snap.mean_ms);
  out.field("max_ms", snap.max_ms);
  out.field("p50_ms", snap.p50_ms);
  out.field("p95_ms", snap.p95_ms);
  out.field("p99_ms", snap.p99_ms);
  return out.close();
}

Histogram::Snapshot histogram_from_json(const JsonObject& object) {
  Histogram::Snapshot snap;
  snap.count = core::json_get_int(object, "count");
  snap.sum_us = core::json_get_int(object, "sum_us");
  snap.max_us = core::json_get_int(object, "max_us");
  if (const auto it = object.find("buckets"); it != object.end()) {
    for (const JsonValue& entry : core::json_as_array(it->second, "histogram buckets")) {
      const JsonArray& pair = core::json_as_array(entry, "histogram bucket entry");
      if (pair.size() != 2) throw std::runtime_error("json: histogram bucket entry is not a pair");
      const auto* index = std::get_if<double>(&pair[0].value);
      const auto* count = std::get_if<double>(&pair[1].value);
      if (index == nullptr || count == nullptr)
        throw std::runtime_error("json: histogram bucket entry is not numeric");
      snap.buckets.emplace_back(static_cast<int32_t>(*index), static_cast<int64_t>(*count));
    }
  }
  snap.finalize();
  return snap;
}

// ---- Prometheus text exposition --------------------------------------------

/// "serve.latency_us|tenant=acme,model=m5" -> {"sesr_serve_latency_us",
/// "tenant=\"acme\",model=\"m5\""}. Dots (and anything else outside the
/// Prometheus name alphabet) become underscores.
struct PromName {
  std::string family;
  std::string labels;  // rendered `k="v",...`, empty when unlabeled
};

std::string sanitize_name(const std::string& raw) {
  std::string out = "sesr_";
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string escape_label_value(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

PromName prom_name(const std::string& instrument) {
  const size_t bar = instrument.find('|');
  PromName name;
  name.family = sanitize_name(instrument.substr(0, bar));
  if (bar == std::string::npos) return name;
  std::string rest = instrument.substr(bar + 1);
  size_t pos = 0;
  while (pos < rest.size()) {
    size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string pair = rest.substr(pos, comma - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      if (!name.labels.empty()) name.labels += ',';
      name.labels += sanitize_name(pair.substr(0, eq)).substr(5);  // no sesr_ prefix on label keys
      name.labels += "=\"" + escape_label_value(pair.substr(eq + 1)) + "\"";
    }
    pos = comma + 1;
  }
  return name;
}

void append_type_line(std::string& out, std::string& last_family, const std::string& family,
                      const char* type) {
  if (family == last_family) return;
  last_family = family;
  out += "# TYPE " + family + " " + type + "\n";
}

std::string prom_sample(const PromName& name, const std::string& extra_labels, double value) {
  std::string labels = name.labels;
  if (!extra_labels.empty()) {
    if (!labels.empty()) labels += ',';
    labels += extra_labels;
  }
  std::string out = name.family;
  if (!labels.empty()) out += "{" + labels + "}";
  out += ' ';
  out += core::json_number(value);
  out += '\n';
  return out;
}

}  // namespace

// ---- Registry --------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) snap.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_) snap.gauges.emplace(name, gauge->value());
  for (const auto& [name, histogram] : histograms_) snap.histograms.emplace(name, histogram->snapshot());
  return snap;
}

Registry& default_registry() {
  static Registry registry;
  return registry;
}

// ---- RegistrySnapshot ------------------------------------------------------

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, snap] : other.histograms) {
    const auto [it, inserted] = histograms.emplace(name, snap);
    if (!inserted) it->second.merge(snap);
  }
}

std::string RegistrySnapshot::to_json() const {
  core::JsonObjectWriter out;

  core::JsonObjectWriter counter_obj;
  for (const auto& [name, value] : counters) counter_obj.field(name.c_str(), value);
  out.field("counters", counter_obj.close());

  core::JsonObjectWriter gauge_obj;
  for (const auto& [name, value] : gauges) gauge_obj.field(name.c_str(), value);
  out.field("gauges", gauge_obj.close());

  core::JsonObjectWriter histogram_obj;
  for (const auto& [name, snap] : histograms) histogram_obj.field(name.c_str(), histogram_to_json(snap));
  out.field("histograms", histogram_obj.close());

  return out.close();
}

RegistrySnapshot RegistrySnapshot::from_json(const std::string& json) {
  const JsonValue document = core::json_parse(json);
  const JsonObject& object = core::json_as_object(document, "registry snapshot");

  RegistrySnapshot snap;
  if (const auto it = object.find("counters"); it != object.end()) {
    for (const auto& [name, value] : core::json_as_object(it->second, "counters")) {
      const auto* number = std::get_if<double>(&value.value);
      if (number == nullptr) throw std::runtime_error("json: counter " + name + " is not a number");
      snap.counters.emplace(name, static_cast<int64_t>(*number));
    }
  }
  if (const auto it = object.find("gauges"); it != object.end()) {
    for (const auto& [name, value] : core::json_as_object(it->second, "gauges")) {
      const auto* number = std::get_if<double>(&value.value);
      if (number == nullptr) throw std::runtime_error("json: gauge " + name + " is not a number");
      snap.gauges.emplace(name, static_cast<int64_t>(*number));
    }
  }
  if (const auto it = object.find("histograms"); it != object.end()) {
    for (const auto& [name, value] : core::json_as_object(it->second, "histograms"))
      snap.histograms.emplace(name, histogram_from_json(core::json_as_object(value, "histogram " + name)));
  }
  return snap;
}

std::string RegistrySnapshot::to_prometheus() const {
  std::string out;
  std::string last_family;

  // std::map iteration is sorted, and "name" < "name|k=v" lexicographically,
  // so every label variant of a family is adjacent: one TYPE line per family.
  for (const auto& [name, value] : counters) {
    const PromName prom = prom_name(name);
    const PromName family{prom.family + "_total", prom.labels};
    append_type_line(out, last_family, family.family, "counter");
    out += prom_sample(family, "", static_cast<double>(value));
  }
  for (const auto& [name, value] : gauges) {
    const PromName prom = prom_name(name);
    append_type_line(out, last_family, prom.family, "gauge");
    out += prom_sample(prom, "", static_cast<double>(value));
  }
  for (const auto& [name, snap] : histograms) {
    const PromName prom = prom_name(name);
    append_type_line(out, last_family, prom.family, "summary");
    // Quantile values are reported in this metric's native unit (the _us
    // naming convention), converted from the snapshot's milliseconds.
    out += prom_sample(prom, "quantile=\"0.5\"", snap.p50_ms * 1000.0);
    out += prom_sample(prom, "quantile=\"0.95\"", snap.p95_ms * 1000.0);
    out += prom_sample(prom, "quantile=\"0.99\"", snap.p99_ms * 1000.0);
    out += prom_sample({prom.family + "_sum", prom.labels}, "", static_cast<double>(snap.sum_us));
    out += prom_sample({prom.family + "_count", prom.labels}, "", static_cast<double>(snap.count));
  }
  return out;
}

}  // namespace sesr::obs
