#include "obs/trace.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "core/config.h"
#include "core/json.h"

namespace sesr::obs {

namespace {

// ---- per-thread rings ------------------------------------------------------

// One span = one 64-byte slot of relaxed atomic words. The owning thread is
// the only writer (including of `head`), so stores are plain relaxed with a
// release on the head bump; drains acquire the head and copy whatever is
// there. A record overwritten mid-copy yields a torn slot whose fields
// mix two spans — acceptable for a flight recorder, and slots whose span id
// reads 0 are dropped outright.
struct Slot {
  std::atomic<uint64_t> words[8];
};

constexpr size_t kNameWords = 3;  // words 5..7: 24 name bytes
constexpr size_t kNameBytes = kNameWords * sizeof(uint64_t);

struct Ring {
  explicit Ring(size_t capacity, uint32_t tid_in) : slots(capacity), tid(tid_in) {}
  std::vector<Slot> slots;
  std::atomic<uint64_t> head{0};
  uint32_t tid;
};

std::mutex& rings_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<std::shared_ptr<Ring>>& rings() {
  // Shared ownership: the registry keeps rings alive past thread exit so a
  // drain still sees spans recorded by finished worker threads.
  static auto* all = new std::vector<std::shared_ptr<Ring>>();
  return *all;
}

std::atomic<int> g_enabled{-1};  // -1 = config not read yet
std::atomic<int64_t> g_ring_bytes{int64_t{1} << 20};
std::atomic<uint32_t> g_next_id{0};

uint64_t id_bits(uint32_t counter) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(::getpid())) << 32) | counter;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    const int64_t bytes = std::max<int64_t>(g_ring_bytes.load(std::memory_order_relaxed),
                                            static_cast<int64_t>(sizeof(Slot)));
    const size_t capacity = static_cast<size_t>(bytes) / sizeof(Slot);
    std::lock_guard<std::mutex> lock(rings_mutex());
    auto created = std::make_shared<Ring>(capacity, static_cast<uint32_t>(rings().size() + 1));
    rings().push_back(created);
    return created;
  }();
  return *ring;
}

std::string span_name(const SpanRecord& record) { return record.name; }

}  // namespace

bool trace_enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    refresh_trace_config();
    state = g_enabled.load(std::memory_order_relaxed);
  }
  return state > 0;
}

void refresh_trace_config() {
  g_ring_bytes.store(core::config_int64("SESR_TRACE_RING_BYTES"), std::memory_order_relaxed);
  g_enabled.store(core::config_bool("SESR_TRACE") ? 1 : 0, std::memory_order_relaxed);
}

int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceContext start_trace() {
  if (!trace_enabled()) return {};
  return {id_bits(g_next_id.fetch_add(1, std::memory_order_relaxed) + 1), 0};
}

uint64_t next_span_id() { return id_bits(g_next_id.fetch_add(1, std::memory_order_relaxed) + 1); }

void record_span(uint64_t trace_id, uint64_t span_id, uint64_t parent_span, const char* name,
                 int64_t start_ns, int64_t end_ns) {
  if (trace_id == 0) return;
  Ring& ring = local_ring();
  const uint64_t head = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[head % ring.slots.size()];
  slot.words[0].store(trace_id, std::memory_order_relaxed);
  slot.words[1].store(span_id, std::memory_order_relaxed);
  slot.words[2].store(parent_span, std::memory_order_relaxed);
  slot.words[3].store(static_cast<uint64_t>(start_ns), std::memory_order_relaxed);
  slot.words[4].store(static_cast<uint64_t>(std::max<int64_t>(end_ns - start_ns, 0)),
                      std::memory_order_relaxed);
  char packed[kNameBytes] = {};
  std::strncpy(packed, name, kNameBytes - 1);
  for (size_t w = 0; w < kNameWords; ++w) {
    uint64_t word = 0;
    std::memcpy(&word, packed + w * sizeof(uint64_t), sizeof(uint64_t));
    slot.words[5 + w].store(word, std::memory_order_relaxed);
  }
  ring.head.store(head + 1, std::memory_order_release);
}

Span::Span(const TraceContext& parent, const char* name) {
  if (!parent) return;
  ctx_ = {parent.trace_id, next_span_id()};
  parent_span_ = parent.span_id;
  name_ = name;
  start_ns_ = trace_now_ns();
}

void Span::end() {
  if (!ctx_) return;
  record_span(ctx_.trace_id, ctx_.span_id, parent_span_, name_, start_ns_, trace_now_ns());
  ctx_ = {};
}

std::vector<SpanRecord> drain_spans() {
  std::vector<SpanRecord> out;
  const int32_t pid = static_cast<int32_t>(::getpid());
  std::lock_guard<std::mutex> lock(rings_mutex());
  for (const auto& ring : rings()) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t capacity = ring->slots.size();
    const uint64_t first = head > capacity ? head - capacity : 0;
    for (uint64_t i = first; i < head; ++i) {
      const Slot& slot = ring->slots[i % capacity];
      SpanRecord record;
      record.trace_id = slot.words[0].load(std::memory_order_relaxed);
      record.span_id = slot.words[1].load(std::memory_order_relaxed);
      record.parent_span = slot.words[2].load(std::memory_order_relaxed);
      record.start_ns = static_cast<int64_t>(slot.words[3].load(std::memory_order_relaxed));
      record.dur_ns = static_cast<int64_t>(slot.words[4].load(std::memory_order_relaxed));
      record.tid = ring->tid;
      record.pid = pid;
      if (record.trace_id == 0 || record.span_id == 0) continue;  // blank or torn
      char packed[kNameBytes + 1] = {};
      for (size_t w = 0; w < kNameWords; ++w) {
        const uint64_t word = slot.words[5 + w].load(std::memory_order_relaxed);
        std::memcpy(packed + w * sizeof(uint64_t), &word, sizeof(uint64_t));
      }
      record.name = packed;
      out.push_back(std::move(record));
    }
  }
  return out;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
  // "X" complete events; ts/dur are microseconds (Chrome's unit), the exact
  // ids and nanosecond times ride in args as strings so a parse round-trips
  // without double precision loss.
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",\n";
    first = false;
    core::JsonObjectWriter event;
    event.field("name", core::json_quote(span_name(span)));
    event.field("ph", core::json_quote("X"));
    event.field("pid", static_cast<int64_t>(span.pid));
    event.field("tid", static_cast<int64_t>(span.tid));
    event.field("ts", static_cast<double>(span.start_ns) / 1000.0);
    event.field("dur", static_cast<double>(span.dur_ns) / 1000.0);
    core::JsonObjectWriter args;
    args.field("trace", core::json_quote(std::to_string(span.trace_id)));
    args.field("span", core::json_quote(std::to_string(span.span_id)));
    args.field("parent", core::json_quote(std::to_string(span.parent_span)));
    args.field("start_ns", core::json_quote(std::to_string(span.start_ns)));
    args.field("dur_ns", core::json_quote(std::to_string(span.dur_ns)));
    event.field("args", args.close());
    out += event.close();
  }
  out += "]}";
  return out;
}

std::string drain_chrome_trace() { return chrome_trace_json(drain_spans()); }

std::vector<SpanRecord> parse_chrome_trace(const std::string& json) {
  const core::JsonValue document = core::json_parse(json);
  const core::JsonObject& object = core::json_as_object(document, "trace document");
  const auto it = object.find("traceEvents");
  if (it == object.end()) throw std::runtime_error("json: trace document has no traceEvents");

  std::vector<SpanRecord> out;
  for (const core::JsonValue& entry : core::json_as_array(it->second, "traceEvents")) {
    const core::JsonObject& event = core::json_as_object(entry, "trace event");
    SpanRecord record;
    record.name = core::json_get_string(event, "name");
    record.pid = static_cast<int32_t>(core::json_get_int(event, "pid"));
    record.tid = static_cast<uint32_t>(core::json_get_int(event, "tid"));
    const auto args_it = event.find("args");
    if (args_it == event.end()) continue;  // not one of our span events
    const core::JsonObject& args = core::json_as_object(args_it->second, "trace event args");
    record.trace_id = std::strtoull(core::json_get_string(args, "trace").c_str(), nullptr, 10);
    record.span_id = std::strtoull(core::json_get_string(args, "span").c_str(), nullptr, 10);
    record.parent_span = std::strtoull(core::json_get_string(args, "parent").c_str(), nullptr, 10);
    record.start_ns = static_cast<int64_t>(
        std::strtoull(core::json_get_string(args, "start_ns").c_str(), nullptr, 10));
    record.dur_ns = static_cast<int64_t>(
        std::strtoull(core::json_get_string(args, "dur_ns").c_str(), nullptr, 10));
    if (record.trace_id == 0 || record.span_id == 0) continue;
    out.push_back(std::move(record));
  }
  return out;
}

std::vector<std::string> validate_span_nesting(const std::vector<SpanRecord>& spans) {
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) by_id.emplace(span.span_id, &span);

  std::vector<std::string> violations;
  for (const SpanRecord& span : spans) {
    if (span.parent_span == 0) continue;
    const auto it = by_id.find(span.parent_span);
    if (it == by_id.end()) continue;  // parent not captured (e.g. other host)
    const SpanRecord& parent = *it->second;
    if (parent.trace_id != span.trace_id) {
      violations.push_back("span '" + span.name + "' and parent '" + parent.name +
                           "' disagree on trace id");
      continue;
    }
    if (span.start_ns < parent.start_ns || span.start_ns + span.dur_ns > parent.start_ns + parent.dur_ns) {
      violations.push_back("span '" + span.name + "' [" + std::to_string(span.start_ns) + ", " +
                           std::to_string(span.start_ns + span.dur_ns) + "] escapes parent '" +
                           parent.name + "' [" + std::to_string(parent.start_ns) + ", " +
                           std::to_string(parent.start_ns + parent.dur_ns) + "]");
    }
  }
  return violations;
}

std::string write_trace_file() {
  const std::string dir = core::config_string("SESR_TRACE_DIR");
  if (dir.empty()) return {};
  ::mkdir(dir.c_str(), 0777);  // best-effort; existing directory is fine
  const std::string path = dir + "/trace_" + std::to_string(::getpid()) + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return {};
  const std::string json = drain_chrome_trace();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return path;
}

void clear_trace_buffers() {
  std::lock_guard<std::mutex> lock(rings_mutex());
  for (const auto& ring : rings()) {
    for (Slot& slot : ring->slots)
      for (std::atomic<uint64_t>& word : slot.words) word.store(0, std::memory_order_relaxed);
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace sesr::obs
