// Unified metrics registry: counters, gauges, and histograms registered by
// name, snapshotted to a mergeable value bag, and exported as JSON or
// Prometheus text exposition.
//
// Instruments are cheap (relaxed atomics) and have stable addresses for the
// registry's lifetime — callers resolve them once (Counter& submitted =
// registry.counter("serve.submitted")) and hit a lock only at registration.
// Labels are encoded into the instrument name after a '|' as comma-separated
// key=value pairs ("serve.tenant.submitted|tenant=acme"); JSON keys carry the
// full string, the Prometheus emitter renders them as real labels.
//
// RegistrySnapshot::merge is exact on counters and histogram buckets (int64
// sums), which is what makes the frontend's fleet view equal the per-shard
// registries bit-for-bit; gauges sum too (fleet totals of levels like queue
// depth or pool occupancy).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.h"

namespace sesr::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  [[nodiscard]] int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level (queue depth, pool occupancy, high-water marks).
class Gauge {
 public:
  void set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Returns the post-add reading (occupancy gates want the new level).
  int64_t add(int64_t delta) { return value_.fetch_add(delta, std::memory_order_relaxed) + delta; }
  /// Raise to `value` if it exceeds the current reading (high-water mark).
  void set_max(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen && !value_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a registry's instruments, keyed by full instrument
/// name. Serializable both ways; merge folds another snapshot in (sums for
/// counters/gauges/histogram buckets, max-of-max for histogram maxima).
struct RegistrySnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  void merge(const RegistrySnapshot& other);

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static RegistrySnapshot from_json(const std::string& json);

  /// Prometheus text exposition: counters as `<name>_total`, gauges as
  /// gauges, histograms as summaries (quantile series + _sum/_count).
  /// Names are prefixed `sesr_`, dots become underscores, `|k=v,...`
  /// suffixes become label sets.
  [[nodiscard]] std::string to_prometheus() const;
};

class Registry {
 public:
  /// Find or create; the returned reference stays valid for the registry's
  /// lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide registry for instruments that are not owned by one component
/// (per-op profiler aggregates, process-level counters).
Registry& default_registry();

}  // namespace sesr::obs
