// Luma-channel super resolution (the paper's footnote 2).
//
// The original SESR and FSRCNN papers run SR on the Y channel of YCbCr only,
// upscaling chroma with a cheap interpolator — that is why their published
// parameter/MAC counts are smaller than the DATE-2022 paper's RGB numbers.
// This module makes the trade-off executable: a 1-channel SR network handles
// luma, bicubic handles Cb/Cr, and the result converts back to RGB. The
// bench_ext_luma_vs_rgb harness compares both formulations on quality, cost
// and robustness.
#pragma once

#include <memory>

#include "models/upscaler.h"

namespace sesr::models {

/// Extract the Y (luma) plane of an [N, 3, H, W] RGB batch as [N, 1, H, W].
Tensor luma_of(const Tensor& rgb);

/// x2 upscaler combining a 1-channel SR network (luma) with bicubic chroma.
class LumaSrUpscaler final : public Upscaler {
 public:
  /// `luma_network` must map [N, 1, H, W] -> [N, 1, 2H, 2W].
  LumaSrUpscaler(std::string label, std::shared_ptr<nn::Module> luma_network);

  Tensor upscale(const Tensor& rgb) override;
  [[nodiscard]] std::string label() const override { return label_; }
  [[nodiscard]] int64_t num_params() const override { return network_->num_params(); }
  /// MACs of the luma network on the Y plane of the given CHW image (chroma
  /// interpolation is counted as zero, matching Table I's conventions).
  [[nodiscard]] int64_t macs_for(const Shape& single_image_chw) const override;

  [[nodiscard]] nn::Module& network() { return *network_; }
  [[nodiscard]] const nn::Module& network() const { return *network_; }

 private:
  std::string label_;
  std::shared_ptr<nn::Module> network_;
};

}  // namespace sesr::models
