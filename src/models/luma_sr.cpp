#include "models/luma_sr.h"

#include <stdexcept>

#include "preprocess/colorspace.h"
#include "preprocess/interpolation.h"

namespace sesr::models {

Tensor luma_of(const Tensor& rgb) {
  const Tensor ycbcr = preprocess::rgb_to_ycbcr(rgb);
  const int64_t n = rgb.dim(0), plane = rgb.dim(2) * rgb.dim(3);
  Tensor y({n, 1, rgb.dim(2), rgb.dim(3)});
  for (int64_t i = 0; i < n; ++i)
    std::copy(ycbcr.data() + i * 3 * plane, ycbcr.data() + i * 3 * plane + plane,
              y.data() + i * plane);
  return y;
}

LumaSrUpscaler::LumaSrUpscaler(std::string label, std::shared_ptr<nn::Module> luma_network)
    : label_(std::move(label)), network_(std::move(luma_network)) {
  if (!network_) throw std::invalid_argument("LumaSrUpscaler: null network");
}

Tensor LumaSrUpscaler::upscale(const Tensor& rgb) {
  if (rgb.ndim() != 4 || rgb.dim(1) != 3)
    throw std::invalid_argument("LumaSrUpscaler::upscale: expected [N, 3, H, W]");
  const int64_t n = rgb.dim(0), h = rgb.dim(2), w = rgb.dim(3);

  const Tensor ycbcr = preprocess::rgb_to_ycbcr(rgb);

  // Luma through the SR network.
  Tensor y_lr({n, 1, h, w});
  for (int64_t i = 0; i < n; ++i)
    std::copy(ycbcr.data() + i * 3 * h * w, ycbcr.data() + i * 3 * h * w + h * w,
              y_lr.data() + i * h * w);
  Tensor y_hr = network_->forward(y_lr);
  y_hr.clamp_(0.0f, 1.0f);
  const int64_t oh = y_hr.dim(2), ow = y_hr.dim(3);

  // Chroma bicubically (standard practice in luma-domain SR).
  const Tensor cbcr_hr = preprocess::resize(ycbcr, oh, ow, preprocess::InterpolationKind::kBicubic);

  Tensor out({n, 3, oh, ow});
  for (int64_t i = 0; i < n; ++i) {
    std::copy(y_hr.data() + i * oh * ow, y_hr.data() + (i + 1) * oh * ow,
              out.data() + i * 3 * oh * ow);
    std::copy(cbcr_hr.data() + (i * 3 + 1) * oh * ow, cbcr_hr.data() + (i * 3 + 3) * oh * ow,
              out.data() + i * 3 * oh * ow + oh * ow);
  }
  return preprocess::ycbcr_to_rgb(out);
}

int64_t LumaSrUpscaler::macs_for(const Shape& single_image_chw) const {
  const Shape luma_input{1, 1, single_image_chw[1], single_image_chw[2]};
  int64_t total = 0;
  for (const nn::LayerInfo& info : network_->layers(luma_input)) total += info.macs;
  return total;
}

}  // namespace sesr::models
