// Common interface for the x2 upscaling stage of the defense pipeline.
//
// Table II compares deep-learning SR networks against classical
// interpolation; both kinds plug into core::DefensePipeline through this
// interface. MAC/parameter figures are per single image at the given input
// size and use the same accounting conventions as the paper's Table I
// (interpolation reports zero — the paper lists "-" for it).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "nn/module.h"
#include "preprocess/interpolation.h"
#include "quant/quantized_model.h"
#include "runtime/runtime.h"
#include "tensor/tensor.h"

namespace sesr::models {

/// Anything that maps an [N, C, H, W] batch to [N, C, 2H, 2W].
class Upscaler {
 public:
  virtual ~Upscaler() = default;

  Upscaler(const Upscaler&) = delete;
  Upscaler& operator=(const Upscaler&) = delete;

  /// Upscale a batch by the configured factor (x2 throughout the paper).
  virtual Tensor upscale(const Tensor& low_res) = 0;

  /// Batch dispatch for the serving engine: upscale the [N, C, H, W] batch
  /// in one dispatch and scatter sample i into per_image[i] (shaped
  /// [1, C, 2H, 2W]; existing contents replaced). per_image.size() must
  /// equal N. Bit-identical to N separate upscale() calls on the rows. The
  /// base implementation routes through upscale() and splits; subclasses may
  /// override with an allocation-leaner path.
  virtual void upscale_batch(const Tensor& low_res, std::span<Tensor> per_image);

  /// Row label for result tables (e.g. "SESR-M2", "Nearest Neighbor").
  [[nodiscard]] virtual std::string label() const = 0;

  /// Learnable parameter count (0 for interpolation).
  [[nodiscard]] virtual int64_t num_params() const = 0;

  /// MACs to upscale one image of the given CHW size (0 for interpolation).
  [[nodiscard]] virtual int64_t macs_for(const Shape& single_image_chw) const = 0;

 protected:
  Upscaler() = default;
};

/// Wraps an SR network (any nn::Module mapping NCHW -> upscaled NCHW).
/// Output is clamped to [0, 1] as classification inputs must stay in range.
///
/// Serving path: when the network supports compiled inference (every SR
/// model in the zoo does, including collapsed-form SESR), upscale() routes
/// through a runtime::Session instead of the training API. Plans are
/// compiled once per batched input shape and shared; sessions are checked
/// out of a small pool under a lock and run outside it, so concurrent
/// upscale() calls serve in parallel with zero steady-state allocation in
/// the network itself. Networks that cannot compile (e.g. containing layers
/// without infer_into) transparently fall back to Module::forward.
///
/// Precision knob: after calibrate_int8 (or set_quantized_model with a
/// pre-built artifact) the upscaler serves through int8 plans — genuine
/// integer kernels, the deployment arithmetic of the paper's Ethos-U55
/// target — and set_precision switches between fp32 and int8 serving at any
/// time. The idle-session retention per shape is additionally capped by the
/// SESR_SESSION_CAP environment variable (default: the observed serving
/// parallelism).
class NetworkUpscaler final : public Upscaler {
 public:
  NetworkUpscaler(std::string label, std::shared_ptr<nn::Module> network);

  Tensor upscale(const Tensor& low_res) override;

  /// Serving-engine batch dispatch: one session checkout and one compiled
  /// run for the whole batch, scattered into per-image outputs through the
  /// session's reusable staging buffer (Session::run_scatter) — no batched
  /// output tensor is allocated per dispatch.
  void upscale_batch(const Tensor& low_res, std::span<Tensor> per_image) override;

  /// Precompile the plan for `input` and prefill its session pool with up to
  /// `sessions` warmed idle sessions (each pays its first-run workspace
  /// sizing here, not on a request), so the serving path never compiles or
  /// cold-starts after warmup. The prefill counts toward the pool's observed
  /// parallelism and is capped by SESR_SESSION_CAP. No-op for networks
  /// without compiled inference.
  void warmup(const Shape& input, int sessions);

  [[nodiscard]] std::string label() const override { return label_; }
  [[nodiscard]] int64_t num_params() const override { return network_->num_params(); }
  [[nodiscard]] int64_t macs_for(const Shape& single_image_chw) const override;

  [[nodiscard]] nn::Module& network() { return *network_; }
  [[nodiscard]] const nn::Module& network() const { return *network_; }

  /// Compiled plan (at the current serving precision) for the given batched
  /// NCHW input shape (cached; compiles on first use). Returns nullptr when
  /// the network does not support compiled inference. Useful for building
  /// extra sessions externally.
  [[nodiscard]] std::shared_ptr<const runtime::Program> plan_for(const Shape& input);

  /// Serving precision. kInt8 requires an artifact (calibrate_int8 /
  /// set_quantized_model); switching drops cached plans and pooled sessions.
  void set_precision(runtime::Precision precision);
  [[nodiscard]] runtime::Precision precision() const;

  /// Calibrate an int8 artifact from representative LR batches (all shaped
  /// like batches.front()) and switch serving to int8.
  void calibrate_int8(std::span<const Tensor> batches,
                      const quant::CalibrationOptions& opts = {});

  /// Install a pre-calibrated artifact (e.g. loaded from disk) and switch
  /// serving to int8.
  void set_quantized_model(std::shared_ptr<const quant::QuantizedModel> artifact);
  [[nodiscard]] std::shared_ptr<const quant::QuantizedModel> quantized_model() const;

  /// Idle sessions currently pooled for a shape (ops/testing introspection;
  /// bounded by the observed serving parallelism and SESR_SESSION_CAP).
  [[nodiscard]] int64_t idle_session_count(const Shape& input) const;

  /// Sessions currently checked out for a shape (ops/testing introspection;
  /// 0 when the upscaler is quiescent — anything else is a leak).
  [[nodiscard]] int64_t live_session_count(const Shape& input) const;

  /// Plans compiled so far, across all shapes and precision switches. A
  /// warmed serving path must not move this counter.
  [[nodiscard]] int64_t plan_compile_count() const {
    return plan_compiles_.load(std::memory_order_relaxed);
  }

  /// plan_for() calls answered from the plan cache (the miss count is
  /// plan_compile_count()). A warmed serving path is all hits.
  [[nodiscard]] int64_t plan_cache_hit_count() const {
    return plan_cache_hits_.load(std::memory_order_relaxed);
  }

  /// Point-in-time occupancy of one shape's session pool.
  struct PoolOccupancy {
    std::string plan_key;  ///< shape + kernel-tier key the pool is cached under
    int64_t idle = 0;
    int64_t live = 0;
    int64_t peak = 0;  ///< high-water of concurrent checkouts
  };

  /// Snapshot of every session pool (ops/metrics introspection).
  [[nodiscard]] std::vector<PoolOccupancy> pool_occupancy() const;

 private:
  /// Per-shape session pool. `live` counts checked-out sessions; `peak` is
  /// the high-water of concurrent checkouts — the observed serving
  /// parallelism — and (together with SESR_SESSION_CAP) caps how many idle
  /// sessions the shape retains.
  struct SessionPool {
    std::vector<std::unique_ptr<runtime::Session>> idle;
    int64_t live = 0;
    int64_t peak = 0;
  };

  std::unique_ptr<runtime::Session> checkout_session(const Shape& input);
  /// Return a checked-out session (nullptr = it died with an exception).
  void return_session(const Shape& input, std::unique_ptr<runtime::Session> session);
  void reset_serving_state_locked();

  std::string label_;
  std::shared_ptr<nn::Module> network_;
  bool compilable_;

  mutable std::mutex mutex_;  // guards precision/artifact and the two maps
  std::atomic<int64_t> plan_compiles_{0};
  std::atomic<int64_t> plan_cache_hits_{0};
  runtime::Precision precision_ = runtime::Precision::kFloat32;
  std::shared_ptr<const quant::QuantizedModel> artifact_;
  std::map<std::string, std::shared_ptr<const runtime::Program>> plans_;
  std::map<std::string, SessionPool> session_pools_;
};

/// Classical interpolation as an Upscaler (the paper's Nearest Neighbor row).
class InterpolationUpscaler final : public Upscaler {
 public:
  explicit InterpolationUpscaler(preprocess::InterpolationKind kind, int64_t factor = 2)
      : kind_(kind), factor_(factor) {}

  Tensor upscale(const Tensor& low_res) override {
    return preprocess::upscale(low_res, factor_, kind_);
  }

  [[nodiscard]] std::string label() const override {
    return preprocess::interpolation_name(kind_);
  }
  [[nodiscard]] int64_t num_params() const override { return 0; }
  [[nodiscard]] int64_t macs_for(const Shape&) const override { return 0; }

 private:
  preprocess::InterpolationKind kind_;
  int64_t factor_;
};

}  // namespace sesr::models
