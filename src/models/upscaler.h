// Common interface for the x2 upscaling stage of the defense pipeline.
//
// Table II compares deep-learning SR networks against classical
// interpolation; both kinds plug into core::DefensePipeline through this
// interface. MAC/parameter figures are per single image at the given input
// size and use the same accounting conventions as the paper's Table I
// (interpolation reports zero — the paper lists "-" for it).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nn/module.h"
#include "preprocess/interpolation.h"
#include "tensor/tensor.h"

namespace sesr::models {

/// Anything that maps an [N, C, H, W] batch to [N, C, 2H, 2W].
class Upscaler {
 public:
  virtual ~Upscaler() = default;

  Upscaler(const Upscaler&) = delete;
  Upscaler& operator=(const Upscaler&) = delete;

  /// Upscale a batch by the configured factor (x2 throughout the paper).
  virtual Tensor upscale(const Tensor& low_res) = 0;

  /// Row label for result tables (e.g. "SESR-M2", "Nearest Neighbor").
  [[nodiscard]] virtual std::string label() const = 0;

  /// Learnable parameter count (0 for interpolation).
  [[nodiscard]] virtual int64_t num_params() = 0;

  /// MACs to upscale one image of the given CHW size (0 for interpolation).
  [[nodiscard]] virtual int64_t macs_for(const Shape& single_image_chw) = 0;

 protected:
  Upscaler() = default;
};

/// Wraps an SR network (any nn::Module mapping NCHW -> upscaled NCHW).
/// Output is clamped to [0, 1] as classification inputs must stay in range.
class NetworkUpscaler final : public Upscaler {
 public:
  NetworkUpscaler(std::string label, std::shared_ptr<nn::Module> network)
      : label_(std::move(label)), network_(std::move(network)) {}

  Tensor upscale(const Tensor& low_res) override {
    Tensor out = network_->forward(low_res);
    out.clamp_(0.0f, 1.0f);
    return out;
  }

  [[nodiscard]] std::string label() const override { return label_; }
  [[nodiscard]] int64_t num_params() override { return network_->num_params(); }
  [[nodiscard]] int64_t macs_for(const Shape& single_image_chw) override;

  [[nodiscard]] nn::Module& network() { return *network_; }

 private:
  std::string label_;
  std::shared_ptr<nn::Module> network_;
};

/// Classical interpolation as an Upscaler (the paper's Nearest Neighbor row).
class InterpolationUpscaler final : public Upscaler {
 public:
  explicit InterpolationUpscaler(preprocess::InterpolationKind kind, int64_t factor = 2)
      : kind_(kind), factor_(factor) {}

  Tensor upscale(const Tensor& low_res) override {
    return preprocess::upscale(low_res, factor_, kind_);
  }

  [[nodiscard]] std::string label() const override {
    return preprocess::interpolation_name(kind_);
  }
  [[nodiscard]] int64_t num_params() override { return 0; }
  [[nodiscard]] int64_t macs_for(const Shape&) override { return 0; }

 private:
  preprocess::InterpolationKind kind_;
  int64_t factor_;
};

}  // namespace sesr::models
