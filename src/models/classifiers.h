// Architecture-faithful, scaled-down analogues of the paper's classifiers.
//
// The paper attacks pretrained ImageNet models (MobileNet-V2, ResNet-50,
// Inception-V3). Reproducing those exactly requires ImageNet; what the
// defense study actually needs is three classifier *families* with the same
// architectural signatures — compact depthwise/inverted-residual (MobileNet),
// deep residual (ResNet), parallel multi-branch (Inception) — trained to high
// clean accuracy on the synthetic dataset. All three are fully convolutional
// with global average pooling, so one set of weights classifies both the raw
// LR resolution (attack crafting) and the x2-upscaled resolution (defended
// inference), mirroring the paper's 299 -> 598 flow.
//
// Batch normalisation is intentionally omitted (He init + Adam train these
// depths without it); this keeps the backward pass and the Ethos-U55 cost
// model simpler and is documented as a deviation in DESIGN.md.
#pragma once

#include <memory>

#include "nn/nn.h"

namespace sesr::models {

/// Common base: a named Sequential with a classification head.
class Classifier : public nn::Module {
 public:
  Tensor forward(const Tensor& input) override { return net_.forward(input); }
  Tensor backward(const Tensor& grad_output) override { return net_.backward(grad_output); }
  std::vector<nn::Parameter*> parameters() override { return net_.parameters(); }
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override {
    return net_.trace(input, out);
  }

  [[nodiscard]] int64_t num_classes() const { return num_classes_; }
  /// Convenience alias for init_weights.
  void init(Rng& rng) { init_weights(rng); }

 protected:
  explicit Classifier(int64_t num_classes) : num_classes_(num_classes) {}

  int64_t num_classes_;
  nn::Sequential net_;
};

/// MobileNet-V2 analogue: stem + inverted-residual (expand 1x1 / depthwise
/// 3x3 / project 1x1) blocks with ReLU6. The compact, least-robust model of
/// Table II.
class TinyMobileNetV2 final : public Classifier {
 public:
  explicit TinyMobileNetV2(int64_t num_classes = 10);
  [[nodiscard]] std::string name() const override { return "MobileNet-V2"; }
};

/// ResNet-50 analogue: stem + three stages of basic residual blocks
/// (conv-ReLU-conv + projection shortcuts on downsampling).
class TinyResNet final : public Classifier {
 public:
  explicit TinyResNet(int64_t num_classes = 10);
  [[nodiscard]] std::string name() const override { return "ResNet-50"; }
};

/// Inception-V3 analogue: stem + two inception blocks (1x1 / 3x3 / 5x5 /
/// pooled branches concatenated).
class TinyInception final : public Classifier {
 public:
  explicit TinyInception(int64_t num_classes = 10);
  [[nodiscard]] std::string name() const override { return "Inception-V3"; }
};

/// Full ImageNet-scale MobileNet-V2 (Sandler et al. 2018, width 1.0):
/// stem conv (32, s2), the standard (t, c, n, s) bottleneck schedule
/// [(1,16,1,1), (6,24,2,2), (6,32,3,2), (6,64,4,2), (6,96,3,1), (6,160,3,2),
/// (6,320,1,1)], 1280-channel head, 1000-way classifier.
///
/// Used ONLY for analytic cost/latency accounting (Table IV's "enlarged
/// MobileNet-V2" at 598x598 ~= 2.1 GMAC): never trained or run here.
class MobileNetV2Paper final : public Classifier {
 public:
  explicit MobileNetV2Paper(int64_t num_classes = 1000);
  [[nodiscard]] std::string name() const override { return "MobileNet-V2 (paper scale)"; }
};

}  // namespace sesr::models
