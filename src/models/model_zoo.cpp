#include "models/model_zoo.h"

#include <stdexcept>

namespace sesr::models {
namespace {

std::shared_ptr<nn::Module> make_sesr(SesrConfig cfg) {
  return std::make_shared<Sesr>(cfg, Sesr::Form::kInference);
}

std::vector<SrModelSpec> build_zoo() {
  std::vector<SrModelSpec> zoo;

  zoo.push_back({"FSRCNN", true,
                 [] { return std::make_shared<Fsrcnn>(FsrcnnConfig::paper()); },
                 [] { return std::make_shared<Fsrcnn>(FsrcnnConfig::paper()); },
                 PaperReference{24.336e3, 5.82e9, 32.92}});

  zoo.push_back({"EDSR-base", false,
                 [] { return std::make_shared<Edsr>(EdsrConfig::base_paper()); },
                 [] { return std::make_shared<Edsr>(EdsrConfig::base_repo()); },
                 PaperReference{1.19e6, 106e9, 34.62}});

  zoo.push_back({"EDSR", false,
                 [] { return std::make_shared<Edsr>(EdsrConfig::full_paper()); },
                 [] { return std::make_shared<Edsr>(EdsrConfig::full_repo()); },
                 PaperReference{42e6, 3400e9, 35.03}});

  zoo.push_back({"SESR-M2", true, [] { return make_sesr(SesrConfig::m2()); },
                 [] { return make_sesr(SesrConfig::m2()); },
                 PaperReference{10.608e3, 0.948e9, 33.26}});

  zoo.push_back({"SESR-M3", true, [] { return make_sesr(SesrConfig::m3()); },
                 [] { return make_sesr(SesrConfig::m3()); },
                 PaperReference{12.912e3, 1.154e9, 33.44}});

  zoo.push_back({"SESR-M5", true, [] { return make_sesr(SesrConfig::m5()); },
                 [] { return make_sesr(SesrConfig::m5()); },
                 PaperReference{17.520e3, 1.566e9, 33.64}});

  zoo.push_back({"SESR-XL", true, [] { return make_sesr(SesrConfig::xl()); },
                 [] { return make_sesr(SesrConfig::xl()); },
                 PaperReference{113.3e3, 10.13e9, 34.14}});

  return zoo;
}

}  // namespace

const std::vector<SrModelSpec>& sr_model_zoo() {
  static const std::vector<SrModelSpec> zoo = build_zoo();
  return zoo;
}

const SrModelSpec& sr_model(const std::string& label) {
  for (const SrModelSpec& spec : sr_model_zoo())
    if (spec.label == label) return spec;
  throw std::out_of_range("sr_model: unknown label " + label);
}

const std::vector<ClassifierSpec>& classifier_zoo() {
  static const std::vector<ClassifierSpec> zoo = {
      {"MobileNet-V2",
       [](int64_t k) { return std::make_shared<TinyMobileNetV2>(k); }},
      {"ResNet-50", [](int64_t k) { return std::make_shared<TinyResNet>(k); }},
      {"Inception-V3", [](int64_t k) { return std::make_shared<TinyInception>(k); }},
  };
  return zoo;
}

}  // namespace sesr::models
