#include "models/classifiers.h"

namespace sesr::models {
namespace {

nn::Conv2dOptions conv(int64_t in_c, int64_t out_c, int64_t k, int64_t stride = 1) {
  return {.in_channels = in_c, .out_channels = out_c, .kernel = k, .stride = stride,
          .padding = -1, .bias = true};
}

nn::Conv2dOptions conv1x1(int64_t in_c, int64_t out_c, int64_t stride = 1) {
  return {.in_channels = in_c, .out_channels = out_c, .kernel = 1, .stride = stride,
          .padding = 0, .bias = true};
}

int64_t groups_for(int64_t channels) { return channels % 8 == 0 ? 8 : (channels % 4 == 0 ? 4 : 1); }

// MobileNet-V2 inverted residual: 1x1 expand -> norm/ReLU6 -> 3x3 depthwise
// -> norm/ReLU6 -> 1x1 linear project; identity residual when geometry
// allows. `with_norm` selects the trainable repo-scale variant (GroupNorm in
// place of the original's BatchNorm — see classifiers.h); the paper-scale
// cost-accounting variant omits norms, matching deployment folding.
std::unique_ptr<nn::Module> inverted_residual(int64_t in_c, int64_t out_c, int64_t expand,
                                              int64_t stride, bool with_norm = false) {
  auto body = std::make_unique<nn::Sequential>("inverted_residual");
  const int64_t mid = in_c * expand;
  if (expand != 1) {  // t = 1 blocks have no expansion conv (MobileNet-V2 paper)
    body->add<nn::Conv2d>(conv1x1(in_c, mid));
    if (with_norm) body->add<nn::GroupNorm>(mid, groups_for(mid));
    body->add<nn::ReLU6>();
  }
  body->add<nn::DepthwiseConv2d>(nn::DepthwiseConv2dOptions{
      .channels = mid, .kernel = 3, .stride = stride, .padding = -1, .bias = true});
  if (with_norm) body->add<nn::GroupNorm>(mid, groups_for(mid));
  body->add<nn::ReLU6>();
  body->add<nn::Conv2d>(conv1x1(mid, out_c));  // linear bottleneck: no activation
  if (with_norm) body->add<nn::GroupNorm>(out_c, groups_for(out_c));
  if (stride == 1 && in_c == out_c)
    return std::make_unique<nn::Residual>(std::move(body));
  return body;
}

// ResNet basic block: conv3x3(stride)-norm-ReLU-conv3x3-norm + shortcut,
// post-ReLU (GroupNorm standing in for the original's BatchNorm).
std::unique_ptr<nn::Module> basic_block(int64_t in_c, int64_t out_c, int64_t stride) {
  auto body = std::make_unique<nn::Sequential>("basic_block");
  body->add<nn::Conv2d>(conv(in_c, out_c, 3, stride));
  body->add<nn::GroupNorm>(out_c, groups_for(out_c));
  body->add<nn::ReLU>();
  body->add<nn::Conv2d>(conv(out_c, out_c, 3));
  // Zero-init gamma: the block starts as an identity mapping.
  body->add<nn::GroupNorm>(out_c, groups_for(out_c), 1e-5f, 0.0f);

  std::unique_ptr<nn::Module> shortcut;
  if (stride != 1 || in_c != out_c) {
    auto proj = std::make_unique<nn::Sequential>("projection");
    proj->add<nn::Conv2d>(conv1x1(in_c, out_c, stride));
    shortcut = std::move(proj);
  }

  auto wrapped = std::make_unique<nn::Sequential>("res_block");
  wrapped->add_module(std::make_unique<nn::Residual>(std::move(body), std::move(shortcut)));
  wrapped->add<nn::ReLU>();
  return wrapped;
}

// Inception block: 1x1 / 1x1-3x3 / 1x1-5x5 / avgpool-1x1 branches.
std::unique_ptr<nn::Module> inception_block(int64_t in_c, int64_t b1, int64_t b3_red,
                                            int64_t b3, int64_t b5_red, int64_t b5,
                                            int64_t pool_proj) {
  auto block = std::make_unique<nn::Concat>();

  auto branch1 = std::make_unique<nn::Sequential>("b1x1");
  branch1->add<nn::Conv2d>(conv1x1(in_c, b1));
  branch1->add<nn::GroupNorm>(b1, groups_for(b1));
  branch1->add<nn::ReLU>();
  block->add_branch_module(std::move(branch1));

  auto branch3 = std::make_unique<nn::Sequential>("b3x3");
  branch3->add<nn::Conv2d>(conv1x1(in_c, b3_red));
  branch3->add<nn::ReLU>();
  branch3->add<nn::Conv2d>(conv(b3_red, b3, 3));
  branch3->add<nn::GroupNorm>(b3, groups_for(b3));
  branch3->add<nn::ReLU>();
  block->add_branch_module(std::move(branch3));

  auto branch5 = std::make_unique<nn::Sequential>("b5x5");
  branch5->add<nn::Conv2d>(conv1x1(in_c, b5_red));
  branch5->add<nn::ReLU>();
  branch5->add<nn::Conv2d>(conv(b5_red, b5, 5));
  branch5->add<nn::GroupNorm>(b5, groups_for(b5));
  branch5->add<nn::ReLU>();
  block->add_branch_module(std::move(branch5));

  auto branch_pool = std::make_unique<nn::Sequential>("bpool");
  branch_pool->add<nn::AvgPool2d>(3, 1, 1);
  branch_pool->add<nn::Conv2d>(conv1x1(in_c, pool_proj));
  branch_pool->add<nn::GroupNorm>(pool_proj, groups_for(pool_proj));
  branch_pool->add<nn::ReLU>();
  block->add_branch_module(std::move(branch_pool));

  return block;
}

}  // namespace

TinyMobileNetV2::TinyMobileNetV2(int64_t num_classes) : Classifier(num_classes) {
  net_.add<nn::Conv2d>(conv(3, 16, 3));
  net_.add<nn::GroupNorm>(16, 8);
  net_.add<nn::ReLU6>();
  net_.add_module(inverted_residual(16, 24, 4, 2, /*with_norm=*/true));
  net_.add_module(inverted_residual(24, 24, 4, 1, true));
  net_.add_module(inverted_residual(24, 32, 4, 2, true));
  net_.add_module(inverted_residual(32, 32, 4, 1, true));
  net_.add_module(inverted_residual(32, 64, 4, 1, true));
  net_.add<nn::Conv2d>(conv1x1(64, 128));
  net_.add<nn::GroupNorm>(128, 8);
  net_.add<nn::ReLU6>();
  net_.add<nn::GlobalAvgPool>();
  net_.add<nn::Linear>(128, num_classes);
}

TinyResNet::TinyResNet(int64_t num_classes) : Classifier(num_classes) {
  net_.add<nn::Conv2d>(conv(3, 32, 3));
  net_.add<nn::GroupNorm>(32, 8);
  net_.add<nn::ReLU>();
  net_.add_module(basic_block(32, 32, 1));
  net_.add_module(basic_block(32, 32, 1));
  net_.add_module(basic_block(32, 64, 2));
  net_.add_module(basic_block(64, 64, 1));
  net_.add_module(basic_block(64, 128, 2));
  net_.add_module(basic_block(128, 128, 1));
  net_.add<nn::GlobalAvgPool>();
  net_.add<nn::Linear>(128, num_classes);
}

MobileNetV2Paper::MobileNetV2Paper(int64_t num_classes) : Classifier(num_classes) {
  net_.add<nn::Conv2d>(conv(3, 32, 3, 2));
  net_.add<nn::ReLU6>();
  struct Stage {
    int64_t t, c, n, s;
  };
  const Stage schedule[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
                            {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1}};
  int64_t in_c = 32;
  for (const Stage& st : schedule) {
    for (int64_t i = 0; i < st.n; ++i) {
      net_.add_module(inverted_residual(in_c, st.c, st.t, i == 0 ? st.s : 1));
      in_c = st.c;
    }
  }
  net_.add<nn::Conv2d>(conv1x1(in_c, 1280));
  net_.add<nn::ReLU6>();
  net_.add<nn::GlobalAvgPool>();
  net_.add<nn::Linear>(1280, num_classes);
}

TinyInception::TinyInception(int64_t num_classes) : Classifier(num_classes) {
  net_.add<nn::Conv2d>(conv(3, 32, 3));
  net_.add<nn::GroupNorm>(32, 8);
  net_.add<nn::ReLU>();
  net_.add<nn::MaxPool2d>(2, 2);
  net_.add_module(inception_block(32, 16, 12, 16, 8, 16, 16));   // -> 64 channels
  net_.add<nn::MaxPool2d>(2, 2);
  net_.add_module(inception_block(64, 32, 24, 32, 12, 32, 32));  // -> 128 channels
  net_.add<nn::GlobalAvgPool>();
  net_.add<nn::Linear>(128, num_classes);
}

}  // namespace sesr::models
