// EDSR (Lim et al., CVPR-W 2017) — the large-SR baseline of Table I/II.
//
// Head conv, B residual blocks (conv-ReLU-conv, residual scale), body-end
// conv with a long skip, then a pixel-shuffle upsampler. Paper-scale configs:
// EDSR-base (B = 16, F = 64, scale 1.0) and EDSR (B = 32, F = 256, scale 0.1).
// Because training a 42M-parameter network from scratch is out of scope for a
// self-contained CPU run, the model zoo also provides width/depth-reduced
// "repo-scale" configs for the *measured* PSNR/robustness experiments, while
// the paper-scale configs are used for analytic MAC/param/latency accounting
// (see DESIGN.md, substitution table).
#pragma once

#include <memory>

#include "nn/nn.h"

namespace sesr::models {

struct EdsrConfig {
  int64_t blocks = 16;      ///< B: residual blocks
  int64_t channels = 64;    ///< F: feature width
  float res_scale = 1.0f;   ///< residual scaling inside blocks
  int64_t scale = 2;
  int64_t image_channels = 3;
  std::string label = "EDSR-base";

  static EdsrConfig base_paper() { return {16, 64, 1.0f, 2, 3, "EDSR-base"}; }
  static EdsrConfig full_paper() { return {32, 256, 0.1f, 2, 3, "EDSR"}; }
  /// Reduced configs for trainable-in-minutes experiments (same family,
  /// preserved ordering EDSR > EDSR-base in capacity).
  static EdsrConfig base_repo() { return {4, 24, 1.0f, 2, 3, "EDSR-base"}; }
  static EdsrConfig full_repo() { return {8, 48, 0.1f, 2, 3, "EDSR"}; }
};

/// EDSR as a single Module.
class Edsr final : public nn::Module {
 public:
  explicit Edsr(EdsrConfig config = {});

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return config_.label; }
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override;
  [[nodiscard]] bool supports_compiled_inference() const override {
    return head_.supports_compiled_inference() && body_.supports_compiled_inference() &&
           upsampler_.supports_compiled_inference();
  }
  int compile_inference(nn::InferenceBuilder& builder, int input) const override;

  [[nodiscard]] const EdsrConfig& config() const { return config_; }

  /// He-normal, with the final reconstruction conv scaled near zero so that,
  /// wrapped in GlobalResidualSr, the fresh network starts as bicubic.
  void init_weights(Rng& rng) override;
  void init(Rng& rng) { init_weights(rng); }

 private:
  EdsrConfig config_;
  nn::Conv2d head_;
  nn::Sequential body_;      // residual blocks + body-end conv
  nn::Sequential upsampler_; // conv to F * scale^2, depth-to-space, final conv
  nn::Conv2d* final_conv_ = nullptr;  // owned by upsampler_
};

}  // namespace sesr::models
