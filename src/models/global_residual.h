// VDSR-style global residual wrapper for SR networks.
//
// output = body(lr) + bicubic_upscale(lr)
//
// FSRCNN and EDSR map LR -> HR directly; trained from scratch on a small
// compute budget they spend most of it rediscovering plain upscaling. The
// global-residual formulation (Kim et al., VDSR, CVPR 2016 — standard
// practice in SR training) has the body learn only the high-frequency
// correction on top of bicubic interpolation, which converges orders of
// magnitude faster. Combined with a near-zero-initialised output layer the
// wrapped network *starts* at bicubic PSNR.
//
// Repo-scale training aid only: the paper-scale architectures used for the
// MAC/parameter/latency columns are the originals (the bicubic add is a few
// adds per pixel and would not change the Ethos-U55 numbers materially).
// Documented as a substitution in DESIGN.md / EXPERIMENTS.md.
//
// Gradient note: backward() propagates through the body only. During SR
// training the input is a leaf (no gradient consumer), and in the paper's
// gray-box threat model attacks never differentiate through the defense, so
// the bicubic path's input-gradient is never needed.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "nn/nn.h"
#include "preprocess/interpolation.h"

namespace sesr::models {

/// Bicubic x`scale` upscaling as an (unlearnable) Module, so the global
/// residual path participates in both forward() and the compiled inference
/// runtime. Never trained through — backward throws. Not part of any
/// structural trace (GlobalResidualSr prices the residual as a free add, see
/// the cost-model note above), so trace() appends nothing.
class BicubicUpscale final : public nn::Module {
 public:
  explicit BicubicUpscale(int64_t scale) : scale_(scale) {}

  Tensor forward(const Tensor& input) override {
    return preprocess::upscale(input, scale_, preprocess::InterpolationKind::kBicubic);
  }

  Tensor backward(const Tensor&) override {
    throw std::logic_error("BicubicUpscale: no backward (see global_residual.h)");
  }

  [[nodiscard]] std::string name() const override {
    return "bicubic_up_x" + std::to_string(scale_);
  }

  Shape trace(const Shape& input, std::vector<nn::LayerInfo>*) const override {
    if (input.ndim() != 4)
      throw std::invalid_argument("BicubicUpscale::trace: expected NCHW, got " +
                                  input.to_string());
    return {input[0], input[1], input[2] * scale_, input[3] * scale_};
  }

  void infer_into(const Tensor& input, Tensor& output, Workspace&) const override {
    // preprocess::upscale has no destination-passing form; one interpolation
    // temporary per call is acceptable off the SESR serving path (this layer
    // only appears in the FSRCNN/EDSR training-aid wrapper).
    const Tensor up = preprocess::upscale(input, scale_, preprocess::InterpolationKind::kBicubic);
    std::copy(up.data(), up.data() + up.numel(), output.data());
  }

  [[nodiscard]] bool supports_compiled_inference() const override { return true; }

 private:
  int64_t scale_;
};

class GlobalResidualSr final : public nn::Module {
 public:
  GlobalResidualSr(nn::ModulePtr body, int64_t scale)
      : body_(std::move(body)), upscale_(scale) {}

  Tensor forward(const Tensor& input) override {
    Tensor out = body_->forward(input);
    out.add_(upscale_.forward(input));
    return out;
  }

  Tensor backward(const Tensor& grad_output) override { return body_->backward(grad_output); }

  std::vector<nn::Parameter*> parameters() override { return body_->parameters(); }

  void init_weights(Rng& rng) override { body_->init_weights(rng); }

  [[nodiscard]] std::string name() const override { return body_->name() + "+bicubic"; }

  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override {
    const Shape body_out = body_->trace(input, out);
    if (out) {
      nn::LayerInfo info;
      info.kind = nn::LayerKind::kElementwise;
      info.name = "global_residual_add";
      info.input = body_out;
      info.output = body_out;
      out->push_back(std::move(info));
    }
    return body_out;
  }

  [[nodiscard]] bool supports_compiled_inference() const override {
    return body_->supports_compiled_inference();
  }

  int compile_inference(nn::InferenceBuilder& builder, int input) const override {
    builder.pin(input);  // re-read by the bicubic path after the body compiles
    const int body = body_->compile_inference(builder, input);
    const int up = builder.emit_layer(upscale_, input);
    builder.emit_add(body, up);
    return body;
  }

  [[nodiscard]] nn::Module& body() { return *body_; }

 private:
  nn::ModulePtr body_;
  BicubicUpscale upscale_;
};

}  // namespace sesr::models
