// VDSR-style global residual wrapper for SR networks.
//
// output = body(lr) + bicubic_upscale(lr)
//
// FSRCNN and EDSR map LR -> HR directly; trained from scratch on a small
// compute budget they spend most of it rediscovering plain upscaling. The
// global-residual formulation (Kim et al., VDSR, CVPR 2016 — standard
// practice in SR training) has the body learn only the high-frequency
// correction on top of bicubic interpolation, which converges orders of
// magnitude faster. Combined with a near-zero-initialised output layer the
// wrapped network *starts* at bicubic PSNR.
//
// Repo-scale training aid only: the paper-scale architectures used for the
// MAC/parameter/latency columns are the originals (the bicubic add is a few
// adds per pixel and would not change the Ethos-U55 numbers materially).
// Documented as a substitution in DESIGN.md / EXPERIMENTS.md.
//
// Gradient note: backward() propagates through the body only. During SR
// training the input is a leaf (no gradient consumer), and in the paper's
// gray-box threat model attacks never differentiate through the defense, so
// the bicubic path's input-gradient is never needed.
#pragma once

#include <memory>

#include "nn/nn.h"
#include "preprocess/interpolation.h"

namespace sesr::models {

class GlobalResidualSr final : public nn::Module {
 public:
  GlobalResidualSr(nn::ModulePtr body, int64_t scale)
      : body_(std::move(body)), scale_(scale) {}

  Tensor forward(const Tensor& input) override {
    Tensor out = body_->forward(input);
    out.add_(preprocess::upscale(input, scale_, preprocess::InterpolationKind::kBicubic));
    return out;
  }

  Tensor backward(const Tensor& grad_output) override { return body_->backward(grad_output); }

  std::vector<nn::Parameter*> parameters() override { return body_->parameters(); }

  void init_weights(Rng& rng) override { body_->init_weights(rng); }

  [[nodiscard]] std::string name() const override { return body_->name() + "+bicubic"; }

  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override {
    const Shape body_out = body_->trace(input, out);
    if (out) {
      nn::LayerInfo info;
      info.kind = nn::LayerKind::kElementwise;
      info.name = "global_residual_add";
      info.input = body_out;
      info.output = body_out;
      out->push_back(std::move(info));
    }
    return body_out;
  }

  [[nodiscard]] nn::Module& body() { return *body_; }

 private:
  nn::ModulePtr body_;
  int64_t scale_;
};

}  // namespace sesr::models
