#include "models/edsr.h"

#include "nn/inference.h"

namespace sesr::models {
namespace {

nn::Conv2dOptions conv3(int64_t in_c, int64_t out_c) {
  return {.in_channels = in_c, .out_channels = out_c, .kernel = 3, .stride = 1, .padding = -1,
          .bias = true};
}

std::unique_ptr<nn::Module> make_res_block(int64_t channels, float res_scale) {
  auto body = std::make_unique<nn::Sequential>("edsr_block");
  body->add<nn::Conv2d>(conv3(channels, channels));
  body->add<nn::ReLU>();
  body->add<nn::Conv2d>(conv3(channels, channels));
  return std::make_unique<nn::Residual>(std::move(body), nullptr, res_scale);
}

}  // namespace

Edsr::Edsr(EdsrConfig config)
    : config_(config),
      head_(conv3(config.image_channels, config.channels)),
      body_("edsr_body"),
      upsampler_("edsr_tail") {
  for (int64_t b = 0; b < config_.blocks; ++b)
    body_.add_module(make_res_block(config_.channels, config_.res_scale));
  body_.add<nn::Conv2d>(conv3(config_.channels, config_.channels));

  const int64_t r2 = config_.scale * config_.scale;
  upsampler_.add<nn::Conv2d>(conv3(config_.channels, config_.channels * r2));
  upsampler_.add<nn::DepthToSpace>(config_.scale);
  final_conv_ = &upsampler_.add<nn::Conv2d>(conv3(config_.channels, config_.image_channels));
}

void Edsr::init_weights(Rng& rng) {
  nn::init_he_normal(*this, rng);
  final_conv_->weight().value.mul_scalar(0.01f);
}

Tensor Edsr::forward(const Tensor& input) {
  Tensor features = head_.forward(input);
  Tensor body_out = body_.forward(features);
  body_out.add_(features);  // long skip over the whole body
  return upsampler_.forward(body_out);
}

Tensor Edsr::backward(const Tensor& grad_output) {
  Tensor g = upsampler_.backward(grad_output);
  Tensor g_skip = g;
  g = body_.backward(g);
  g.add_(g_skip);
  return head_.backward(g);
}

std::vector<nn::Parameter*> Edsr::parameters() {
  std::vector<nn::Parameter*> params = head_.parameters();
  for (nn::Parameter* p : body_.parameters()) params.push_back(p);
  for (nn::Parameter* p : upsampler_.parameters()) params.push_back(p);
  return params;
}

int Edsr::compile_inference(nn::InferenceBuilder& builder, int input) const {
  const int features = head_.compile_inference(builder, input);
  builder.pin(features);  // re-read by the long skip after the body compiles
  const int body = body_.compile_inference(builder, features);
  builder.emit_add(body, features);
  return upsampler_.compile_inference(builder, body);
}

Shape Edsr::trace(const Shape& input, std::vector<nn::LayerInfo>* out) const {
  Shape features = head_.trace(input, out);
  Shape body_out = body_.trace(features, out);
  if (out) {
    nn::LayerInfo info;
    info.kind = nn::LayerKind::kElementwise;
    info.name = "long_skip_add";
    info.input = body_out;
    info.output = body_out;
    out->push_back(std::move(info));
  }
  return upsampler_.trace(body_out, out);
}

}  // namespace sesr::models
