// Umbrella header for the model zoo.
#pragma once

#include "models/classifiers.h"
#include "models/edsr.h"
#include "models/fsrcnn.h"
#include "models/global_residual.h"
#include "models/luma_sr.h"
#include "models/model_zoo.h"
#include "models/sesr.h"
#include "models/upscaler.h"
