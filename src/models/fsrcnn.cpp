#include "models/fsrcnn.h"

namespace sesr::models {

Fsrcnn::Fsrcnn(FsrcnnConfig config) : config_(config), net_("fsrcnn") {
  const int64_t c = config_.image_channels;

  // Feature extraction.
  net_.add<nn::Conv2d>(nn::Conv2dOptions{
      .in_channels = c, .out_channels = config_.d, .kernel = 5, .stride = 1, .padding = -1,
      .bias = true});
  net_.add<nn::PReLU>(config_.d);

  // Shrink.
  net_.add<nn::Conv2d>(nn::Conv2dOptions{
      .in_channels = config_.d, .out_channels = config_.s, .kernel = 1, .stride = 1,
      .padding = 0, .bias = true});
  net_.add<nn::PReLU>(config_.s);

  // Mapping.
  for (int64_t i = 0; i < config_.m; ++i) {
    net_.add<nn::Conv2d>(nn::Conv2dOptions{
        .in_channels = config_.s, .out_channels = config_.s, .kernel = 3, .stride = 1,
        .padding = -1, .bias = true});
    net_.add<nn::PReLU>(config_.s);
  }

  // Expand.
  net_.add<nn::Conv2d>(nn::Conv2dOptions{
      .in_channels = config_.s, .out_channels = config_.d, .kernel = 1, .stride = 1,
      .padding = 0, .bias = true});
  net_.add<nn::PReLU>(config_.d);

  // Deconvolution upsampler: 9x9, stride = scale, geometry chosen so the
  // output is exactly scale * input (pad 4, output_padding scale - 1).
  deconv_ = &net_.add<nn::ConvTranspose2d>(nn::ConvTranspose2dOptions{
      .in_channels = config_.d, .out_channels = c, .kernel = 9, .stride = config_.scale,
      .padding = 4, .output_padding = config_.scale - 1, .bias = true});
}

void Fsrcnn::init_weights(Rng& rng) {
  nn::init_he_normal(*this, rng);
  deconv_->weight().value.mul_scalar(0.01f);
}

}  // namespace sesr::models
