// Super-Efficient Super Resolution (SESR) — the paper's core SR family.
//
// SESR (Bhardwaj et al., arXiv:2103.09404) trains a *linearly
// overparameterised* network built from Collapsible Linear Blocks: a k x k
// convolution expanding f_i channels to p >> f_i, followed by a 1 x 1
// projection back to f_o, with a short residual when f_i == f_o and no
// non-linearity in between. Because the block is linear, it collapses
// analytically into a single k x k convolution for inference — the deployed
// network is a plain VGG-style stack with two long residuals (Fig. 2 of the
// DATE-2022 paper), orders of magnitude cheaper than EDSR.
//
// Architecture (scale s, f channels, m inner blocks):
//   CLB5x5(3 -> f) . PReLU . [ CLB3x3(f -> f) . PReLU ] x m
//     + long residual (first-conv output added after the inner blocks)
//   CLB5x5(f -> 3 s^2) + input tiled s^2 across channels . DepthToSpace(s)
#pragma once

#include <memory>

#include "nn/nn.h"

namespace sesr::models {

/// One collapsible linear block (training form): expand conv (k x k,
/// f_i -> p), project conv (1 x 1, p -> f_o), optional short residual.
class CollapsibleLinearBlock final : public nn::Module {
 public:
  CollapsibleLinearBlock(int64_t in_channels, int64_t out_channels, int64_t expanded_channels,
                         int64_t kernel);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override;
  [[nodiscard]] bool supports_compiled_inference() const override { return true; }
  int compile_inference(nn::InferenceBuilder& builder, int input) const override;

  /// Analytically collapse into a single equivalent Conv2d:
  ///   W_eff[o,i,:,:] = sum_p W_proj[o,p] * W_exp[p,i,:,:]
  ///   b_eff[o]       = sum_p W_proj[o,p] * b_exp[p] + b_proj[o]
  /// plus an identity kernel at the spatial centre when the block carries a
  /// short residual. The returned layer computes the *same function* (up to
  /// float round-off); the collapse-equivalence property tests pin this.
  [[nodiscard]] std::unique_ptr<nn::Conv2d> collapse() const;

  [[nodiscard]] bool has_short_residual() const { return short_residual_; }

 private:
  int64_t kernel_;
  bool short_residual_;
  nn::Conv2d expand_;
  nn::Conv2d project_;
};

/// SESR configuration. Paper configs (Table I): M2/M3/M5 use f = 16,
/// XL uses f = 32 with m = 11. Training-time expansion p = 256 (M) / 64 (XL
/// per the SESR paper's large variants; we default to 256 everywhere, which
/// only affects training cost, not the collapsed network).
struct SesrConfig {
  int64_t m = 2;            ///< number of 3x3 inner layers
  int64_t channels = 16;    ///< f: intermediate feature width
  int64_t expansion = 256;  ///< p: linear overparameterisation width (training only)
  int64_t scale = 2;        ///< super-resolution factor
  int64_t image_channels = 3;

  static SesrConfig m2() { return {2, 16, 256, 2, 3}; }
  static SesrConfig m3() { return {3, 16, 256, 2, 3}; }
  static SesrConfig m5() { return {5, 16, 256, 2, 3}; }
  static SesrConfig xl() { return {11, 32, 256, 2, 3}; }
};

/// SESR network. `Form::kTraining` builds collapsible blocks (expanded);
/// `Form::kInference` builds the collapsed single-conv-per-block network.
/// A trained training-form network converts via collapse_from().
class Sesr final : public nn::Module {
 public:
  enum class Form { kTraining, kInference };

  Sesr(SesrConfig config, Form form);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override;
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override;
  /// m = 0 is structurally valid but has no inner stage, so the long feature
  /// residual would have to double the (pinned) stage-0 buffer in place —
  /// unsupported by the plan IR; such degenerate nets use forward() instead.
  [[nodiscard]] bool supports_compiled_inference() const override { return config_.m >= 1; }
  int compile_inference(nn::InferenceBuilder& builder, int input) const override;

  [[nodiscard]] const SesrConfig& config() const { return config_; }
  [[nodiscard]] Form form() const { return form_; }

  /// He-normal weights with a shrunken final stage, so the fresh network
  /// starts as (nearly) the tiled-input residual — see the implementation.
  void init_weights(Rng& rng) override;

  /// Convenience alias for init_weights.
  void init(Rng& rng) { init_weights(rng); }

  /// Build the inference-form network that computes the same function as a
  /// trained training-form network (analytic collapse of every block).
  static std::unique_ptr<Sesr> collapse_from(const Sesr& trained);

 private:
  // Conv stage i of the inference form; CLB stage i of the training form.
  struct Stage {
    std::unique_ptr<nn::Module> conv;   // CollapsibleLinearBlock or Conv2d
    std::unique_ptr<nn::PReLU> act;     // nullptr for the final stage
  };

  SesrConfig config_;
  Form form_;
  std::vector<Stage> stages_;           // first5x5, m x inner3x3, last5x5
  nn::TileChannels tile_;
  nn::DepthToSpace shuffle_;
};

}  // namespace sesr::models
