#include "models/upscaler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/config.h"
#include "runtime/passes/passes.h"
#include "tensor/simd/dispatch.h"

namespace sesr::models {
namespace {

/// Hard ceiling on idle sessions retained per shape, from SESR_SESSION_CAP
/// (sessions own full activation arenas, so memory-constrained deployments
/// want a small cap; 0 disables retention entirely; unset or unparsable: no
/// extra cap — the observed serving parallelism bounds retention on its
/// own). Read through the typed config layer per call (once per session
/// return) so the knob can change at run time.
int64_t idle_session_cap() { return core::config_int64("SESR_SESSION_CAP"); }

/// Plan/session-pool cache key: shape AND the kernel tier a plan compiled
/// right now would be stamped with. Programs snapshot their tier at compile
/// time, so a shape-only key would keep serving a stale tier after
/// SESR_KERNEL_VARIANT changes (or the jit tier flips availability) —
/// per-tier keys make an environment flip compile fresh plans while old
/// checkouts drain against their own entries.
std::string plan_key(const Shape& input) {
  return input.to_string() + "|" +
         simd::variant_name(runtime::resolved_kernel_variant());
}

}  // namespace

void Upscaler::upscale_batch(const Tensor& low_res, std::span<Tensor> per_image) {
  if (low_res.ndim() != 4 || low_res.dim(0) != static_cast<int64_t>(per_image.size()))
    throw std::invalid_argument("Upscaler::upscale_batch: batch " +
                                low_res.shape().to_string() + " but " +
                                std::to_string(per_image.size()) + " outputs");
  Tensor batched = upscale(low_res);
  const Shape sample{1, batched.dim(1), batched.dim(2), batched.dim(3)};
  const int64_t stride = sample.numel();
  for (size_t i = 0; i < per_image.size(); ++i) {
    // Copy-assign from a named view so the sample is deep-copied out of the
    // batched temporary (a moved view would dangle once `batched` dies).
    const Tensor row =
        Tensor::view(sample, batched.data() + static_cast<int64_t>(i) * stride);
    per_image[i] = row;
  }
}

NetworkUpscaler::NetworkUpscaler(std::string label, std::shared_ptr<nn::Module> network)
    : label_(std::move(label)),
      network_(std::move(network)),
      compilable_(network_ != nullptr && network_->supports_compiled_inference()) {
  if (!network_) throw std::invalid_argument("NetworkUpscaler: null network");
}

int64_t NetworkUpscaler::macs_for(const Shape& single_image_chw) const {
  const Shape batched{1, single_image_chw[0], single_image_chw[1], single_image_chw[2]};
  int64_t total = 0;
  for (const nn::LayerInfo& info : network_->layers(batched)) total += info.macs;
  return total;
}

std::shared_ptr<const runtime::Program> NetworkUpscaler::plan_for(const Shape& input) {
  if (!compilable_) return nullptr;
  const std::string key = plan_key(input);
  // Compiling under the lock serialises only each shape's first-ever call
  // (steady-state lookups are a map find); correctness first, and plans for
  // repeated shapes are exactly what the cache is for.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    auto plan = precision_ == runtime::Precision::kInt8
                    ? runtime::Program::compile_int8(*network_, input, *artifact_)
                    : runtime::Program::compile(*network_, input);
    plan_compiles_.fetch_add(1, std::memory_order_relaxed);
    it = plans_.emplace(key, std::move(plan)).first;
  } else {
    plan_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

std::vector<NetworkUpscaler::PoolOccupancy> NetworkUpscaler::pool_occupancy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PoolOccupancy> out;
  out.reserve(session_pools_.size());
  for (const auto& [key, pool] : session_pools_)
    out.push_back({key, static_cast<int64_t>(pool.idle.size()), pool.live, pool.peak});
  return out;
}

void NetworkUpscaler::reset_serving_state_locked() {
  plans_.clear();
  session_pools_.clear();
}

void NetworkUpscaler::set_precision(runtime::Precision precision) {
  if (!compilable_ && precision == runtime::Precision::kInt8)
    throw std::invalid_argument("NetworkUpscaler::set_precision: " + label_ +
                                " does not support compiled inference");
  std::lock_guard<std::mutex> lock(mutex_);
  if (precision == runtime::Precision::kInt8 && artifact_ == nullptr)
    throw std::invalid_argument(
        "NetworkUpscaler::set_precision: no quantised artifact — calibrate_int8 first");
  if (precision_ == precision) return;
  precision_ = precision;
  reset_serving_state_locked();
}

runtime::Precision NetworkUpscaler::precision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return precision_;
}

void NetworkUpscaler::calibrate_int8(std::span<const Tensor> batches,
                                     const quant::CalibrationOptions& opts) {
  if (batches.empty())
    throw std::invalid_argument("NetworkUpscaler::calibrate_int8: no batches");
  if (!compilable_)
    throw std::invalid_argument("NetworkUpscaler::calibrate_int8: " + label_ +
                                " does not support compiled inference");
  auto artifact = std::make_shared<quant::QuantizedModel>(
      quant::QuantizedModel::calibrate(*network_, batches.front().shape(), batches, opts));
  set_quantized_model(std::move(artifact));
}

void NetworkUpscaler::set_quantized_model(
    std::shared_ptr<const quant::QuantizedModel> artifact) {
  if (artifact == nullptr)
    throw std::invalid_argument("NetworkUpscaler::set_quantized_model: null artifact");
  if (!compilable_)
    throw std::invalid_argument("NetworkUpscaler::set_quantized_model: " + label_ +
                                " does not support compiled inference");
  std::lock_guard<std::mutex> lock(mutex_);
  artifact_ = std::move(artifact);
  precision_ = runtime::Precision::kInt8;
  reset_serving_state_locked();
}

std::shared_ptr<const quant::QuantizedModel> NetworkUpscaler::quantized_model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return artifact_;
}

int64_t NetworkUpscaler::idle_session_count(const Shape& input) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = session_pools_.find(plan_key(input));
  return it == session_pools_.end() ? 0 : static_cast<int64_t>(it->second.idle.size());
}

int64_t NetworkUpscaler::live_session_count(const Shape& input) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = session_pools_.find(plan_key(input));
  return it == session_pools_.end() ? 0 : it->second.live;
}

void NetworkUpscaler::warmup(const Shape& input, int sessions) {
  if (!compilable_) return;
  const auto plan = plan_for(input);  // compiles (and caches) at most once
  const int64_t target = std::min<int64_t>(std::max(sessions, 0), idle_session_cap());
  const std::string key = plan_key(input);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SessionPool& pool = session_pools_[key];
      if (static_cast<int64_t>(pool.idle.size()) >= target) return;
      // Prefilled sessions are declared parallelism: raise the pool's
      // high-water so return_session retains them instead of destroying
      // the warm state we just paid for.
      pool.peak = std::max(pool.peak, target);
    }
    // Build and warm outside the lock: the first run sizes the scratch
    // workspace, so no request pays a cold start. A concurrent precision
    // switch or artifact swap empties the pool and drops this plan from the
    // cache; the identity check below keeps us from stuffing sessions of a
    // superseded plan back in.
    auto session = std::make_unique<runtime::Session>(plan);
    Tensor probe(input);
    Tensor out(plan->output_shape());
    session->run_into(probe, out);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = plans_.find(key);
    if (it == plans_.end() || it->second != plan) return;  // superseded mid-warmup
    SessionPool& pool = session_pools_[key];
    if (static_cast<int64_t>(pool.idle.size()) < target)
      pool.idle.push_back(std::move(session));
  }
}

std::unique_ptr<runtime::Session> NetworkUpscaler::checkout_session(const Shape& input) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SessionPool& pool = session_pools_[plan_key(input)];
    ++pool.live;
    pool.peak = std::max(pool.peak, pool.live);
    if (!pool.idle.empty()) {
      auto session = std::move(pool.idle.back());
      pool.idle.pop_back();
      return session;
    }
  }
  // No idle session: build one (compilation and buffer allocation happen
  // outside the lock). On failure the checkout must be unwound, or the
  // pool's live count — and with it the idle-retention high-water — leaks.
  try {
    return std::make_unique<runtime::Session>(plan_for(input));
  } catch (...) {
    return_session(input, nullptr);
    throw;
  }
}

void NetworkUpscaler::return_session(const Shape& input,
                                     std::unique_ptr<runtime::Session> session) {
  // Sessions own full activation arenas, so cap how many idle ones a shape
  // retains at the observed serving parallelism (`peak`) — retaining more
  // than were ever simultaneously checked out buys nothing — further capped
  // by SESR_SESSION_CAP for memory-constrained deployments. (Plans are
  // retained per shape unboundedly, but hold only the step list, shape table
  // and packed weights — no activation memory.) Beyond the cap the session
  // is destroyed. A session whose plan is no longer the cached one for this
  // shape (the serving state was reset — precision switch or artifact swap —
  // while it was checked out) is likewise dropped: precision alone cannot
  // tell a stale int8 artifact's session from the current one.
  const std::string key = plan_key(input);
  std::lock_guard<std::mutex> lock(mutex_);
  SessionPool& pool = session_pools_[key];
  --pool.live;
  const int64_t cap = std::min(pool.peak, idle_session_cap());
  if (session == nullptr || static_cast<int64_t>(pool.idle.size()) >= cap) return;
  const auto it = plans_.find(key);
  if (it != plans_.end() && it->second.get() == &session->plan())
    pool.idle.push_back(std::move(session));
}

void NetworkUpscaler::upscale_batch(const Tensor& low_res, std::span<Tensor> per_image) {
  if (!compilable_) {
    Upscaler::upscale_batch(low_res, per_image);
    return;
  }
  if (low_res.ndim() != 4 || low_res.dim(0) != static_cast<int64_t>(per_image.size()))
    throw std::invalid_argument("NetworkUpscaler::upscale_batch: batch " +
                                low_res.shape().to_string() + " but " +
                                std::to_string(per_image.size()) + " outputs");
  auto session = checkout_session(low_res.shape());
  try {
    session->run_scatter(low_res, per_image);
  } catch (...) {
    return_session(low_res.shape(), nullptr);
    throw;
  }
  return_session(low_res.shape(), std::move(session));
  // Per-sample clamp is elementwise, so the results stay bit-identical to
  // upscale()'s clamp of the whole batched output.
  for (Tensor& image : per_image) image.clamp_(0.0f, 1.0f);
}

Tensor NetworkUpscaler::upscale(const Tensor& low_res) {
  if (!compilable_) {
    Tensor out = network_->forward(low_res);
    out.clamp_(0.0f, 1.0f);
    return out;
  }
  auto session = checkout_session(low_res.shape());
  Tensor out;
  try {
    out = session->run(low_res);
  } catch (...) {
    return_session(low_res.shape(), nullptr);
    throw;
  }
  return_session(low_res.shape(), std::move(session));
  out.clamp_(0.0f, 1.0f);
  return out;
}

}  // namespace sesr::models
