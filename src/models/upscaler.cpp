#include "models/upscaler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sesr::models {

NetworkUpscaler::NetworkUpscaler(std::string label, std::shared_ptr<nn::Module> network)
    : label_(std::move(label)),
      network_(std::move(network)),
      compilable_(network_ != nullptr && network_->supports_compiled_inference()) {
  if (!network_) throw std::invalid_argument("NetworkUpscaler: null network");
}

int64_t NetworkUpscaler::macs_for(const Shape& single_image_chw) const {
  const Shape batched{1, single_image_chw[0], single_image_chw[1], single_image_chw[2]};
  int64_t total = 0;
  for (const nn::LayerInfo& info : network_->layers(batched)) total += info.macs;
  return total;
}

std::shared_ptr<const runtime::InferencePlan> NetworkUpscaler::plan_for(const Shape& input) {
  if (!compilable_) return nullptr;
  const std::string key = input.to_string();
  // Compiling under the lock serialises only each shape's first-ever call
  // (steady-state lookups are a map find); correctness first, and plans for
  // repeated shapes are exactly what the cache is for.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it == plans_.end())
    it = plans_.emplace(key, runtime::InferencePlan::compile(*network_, input)).first;
  return it->second;
}

std::unique_ptr<runtime::Session> NetworkUpscaler::checkout_session(const Shape& input) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SessionPool& pool = session_pools_[input.to_string()];
    ++pool.live;
    pool.peak = std::max(pool.peak, pool.live);
    if (!pool.idle.empty()) {
      auto session = std::move(pool.idle.back());
      pool.idle.pop_back();
      return session;
    }
  }
  // No idle session: build one (buffer allocation happens outside the lock).
  return std::make_unique<runtime::Session>(plan_for(input));
}

void NetworkUpscaler::return_session(const Shape& input,
                                     std::unique_ptr<runtime::Session> session) {
  // Sessions own full activation arenas, so cap how many idle ones a shape
  // retains at the observed serving parallelism (`peak`) — retaining more
  // than were ever simultaneously checked out buys nothing. (Plans are
  // retained per shape unboundedly, but hold only the step list and shape
  // table — no activation memory.) Beyond the cap the session is destroyed.
  std::lock_guard<std::mutex> lock(mutex_);
  SessionPool& pool = session_pools_[input.to_string()];
  --pool.live;
  if (session != nullptr && static_cast<int64_t>(pool.idle.size()) < pool.peak)
    pool.idle.push_back(std::move(session));
}

Tensor NetworkUpscaler::upscale(const Tensor& low_res) {
  if (!compilable_) {
    Tensor out = network_->forward(low_res);
    out.clamp_(0.0f, 1.0f);
    return out;
  }
  auto session = checkout_session(low_res.shape());
  Tensor out;
  try {
    out = session->run(low_res);
  } catch (...) {
    return_session(low_res.shape(), nullptr);
    throw;
  }
  return_session(low_res.shape(), std::move(session));
  out.clamp_(0.0f, 1.0f);
  return out;
}

}  // namespace sesr::models
