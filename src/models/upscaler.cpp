#include "models/upscaler.h"

namespace sesr::models {

int64_t NetworkUpscaler::macs_for(const Shape& single_image_chw) {
  const Shape batched{1, single_image_chw[0], single_image_chw[1], single_image_chw[2]};
  int64_t total = 0;
  for (const nn::LayerInfo& info : network_->layers(batched)) total += info.macs;
  return total;
}

}  // namespace sesr::models
