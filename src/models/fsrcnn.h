// FSRCNN (Dong et al., ECCV 2016) — the tiny-SR baseline of Table I/II.
//
// VGG-style (no residuals): 5x5 feature extraction (3 -> d), 1x1 shrink
// (d -> s), m mapping 3x3 convs (s -> s), 1x1 expand (s -> d), and a 9x9
// stride-2 transposed-convolution upsampler (d -> 3). PReLU after every conv
// except the deconvolution. Trained with MSE, following the original paper.
// As in the DATE-2022 paper we operate directly in RGB (3 input channels),
// which is why parameter/MAC counts differ from the luma-only original.
#pragma once

#include <memory>

#include "nn/nn.h"

namespace sesr::models {

struct FsrcnnConfig {
  int64_t d = 56;  ///< feature dimension
  int64_t s = 12;  ///< shrunk mapping dimension
  int64_t m = 4;   ///< number of mapping layers
  int64_t scale = 2;
  int64_t image_channels = 3;

  static FsrcnnConfig paper() { return {}; }
};

/// FSRCNN as a single Module (a Sequential under the hood).
class Fsrcnn final : public nn::Module {
 public:
  explicit Fsrcnn(FsrcnnConfig config = {});

  Tensor forward(const Tensor& input) override { return net_.forward(input); }
  Tensor backward(const Tensor& grad_output) override { return net_.backward(grad_output); }
  std::vector<nn::Parameter*> parameters() override { return net_.parameters(); }
  [[nodiscard]] std::string name() const override { return "fsrcnn"; }
  Shape trace(const Shape& input, std::vector<nn::LayerInfo>* out) const override {
    return net_.trace(input, out);
  }
  [[nodiscard]] bool supports_compiled_inference() const override {
    return net_.supports_compiled_inference();
  }
  int compile_inference(nn::InferenceBuilder& builder, int input) const override {
    return net_.compile_inference(builder, input);
  }

  [[nodiscard]] const FsrcnnConfig& config() const { return config_; }

  /// He-normal, with the deconvolution scaled near zero so that, wrapped in
  /// GlobalResidualSr, the fresh network starts as a bicubic upscaler.
  void init_weights(Rng& rng) override;
  void init(Rng& rng) { init_weights(rng); }

 private:
  FsrcnnConfig config_;
  nn::Sequential net_;
  nn::ConvTranspose2d* deconv_ = nullptr;  // owned by net_
};

}  // namespace sesr::models
