// Named model configurations and the paper's reference numbers.
//
// Two scales exist for every SR network:
//  - "paper scale": exactly the architectures of Table I, used for analytic
//    parameter / MAC / Ethos-U55-latency accounting (never trained here);
//  - "repo scale": identical topology (reduced only where training a 42M
//    network is infeasible — i.e. EDSR), used for the measured PSNR and
//    robustness experiments. SESR and FSRCNN are tiny, so their repo scale
//    IS the paper scale.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "models/classifiers.h"
#include "models/edsr.h"
#include "models/fsrcnn.h"
#include "models/sesr.h"
#include "models/upscaler.h"

namespace sesr::models {

/// Reference values from the paper for side-by-side printing in benches.
struct PaperReference {
  double params = 0.0;      ///< parameter count as printed in Table I
  double macs = 0.0;        ///< MACs for 299x299 -> 598x598, Table I
  double psnr_div2k = 0.0;  ///< PSNR (RGB, x2, DIV2K), Table I; 0 = not listed
};

/// One SR model entry: how to build it and what the paper reports for it.
struct SrModelSpec {
  std::string label;                ///< Table row name ("SESR-M2", ...)
  bool trainable_at_repo_scale;     ///< false only for paper-scale EDSR variants
  std::function<std::shared_ptr<nn::Module>()> make_paper_scale;
  std::function<std::shared_ptr<nn::Module>()> make_repo_scale;
  std::optional<PaperReference> reference;
};

/// All SR models of Table I, in the paper's row order.
const std::vector<SrModelSpec>& sr_model_zoo();

/// Find a spec by label; throws std::out_of_range if absent.
const SrModelSpec& sr_model(const std::string& label);

/// The three classifier families of Table II, in the paper's order.
struct ClassifierSpec {
  std::string label;
  std::function<std::shared_ptr<Classifier>(int64_t num_classes)> make;
};
const std::vector<ClassifierSpec>& classifier_zoo();

}  // namespace sesr::models
