#include "models/sesr.h"

#include <stdexcept>

#include "nn/inference.h"

namespace sesr::models {

// ---- CollapsibleLinearBlock -----------------------------------------------------

CollapsibleLinearBlock::CollapsibleLinearBlock(int64_t in_channels, int64_t out_channels,
                                               int64_t expanded_channels, int64_t kernel)
    : kernel_(kernel),
      short_residual_(in_channels == out_channels),
      expand_({.in_channels = in_channels,
               .out_channels = expanded_channels,
               .kernel = kernel,
               .stride = 1,
               .padding = -1,
               .bias = true}),
      project_({.in_channels = expanded_channels,
                .out_channels = out_channels,
                .kernel = 1,
                .stride = 1,
                .padding = 0,
                .bias = true}) {
  if (expanded_channels < in_channels || expanded_channels < out_channels)
    throw std::invalid_argument(
        "CollapsibleLinearBlock: expansion must be >= channel widths (p >> f)");
}

std::string CollapsibleLinearBlock::name() const {
  return "clb" + std::to_string(kernel_) + "x" + std::to_string(kernel_);
}

std::vector<nn::Parameter*> CollapsibleLinearBlock::parameters() {
  std::vector<nn::Parameter*> params = expand_.parameters();
  for (nn::Parameter* p : project_.parameters()) params.push_back(p);
  return params;
}

Tensor CollapsibleLinearBlock::forward(const Tensor& input) {
  Tensor out = project_.forward(expand_.forward(input));
  if (short_residual_) out.add_(input);
  return out;
}

Tensor CollapsibleLinearBlock::backward(const Tensor& grad_output) {
  Tensor grad = expand_.backward(project_.backward(grad_output));
  if (short_residual_) grad.add_(grad_output);
  return grad;
}

Shape CollapsibleLinearBlock::trace(const Shape& input, std::vector<nn::LayerInfo>* out) const {
  Shape shape = project_.trace(expand_.trace(input, out), out);
  if (out && short_residual_) {
    nn::LayerInfo info;
    info.kind = nn::LayerKind::kElementwise;
    info.name = "short_residual";
    info.input = shape;
    info.output = shape;
    out->push_back(std::move(info));
  }
  return shape;
}

int CollapsibleLinearBlock::compile_inference(nn::InferenceBuilder& builder, int input) const {
  if (short_residual_) builder.pin(input);  // re-read after expand/project
  const int mid = expand_.compile_inference(builder, input);
  const int out = project_.compile_inference(builder, mid);
  if (short_residual_) builder.emit_add(out, input);
  return out;
}

std::unique_ptr<nn::Conv2d> CollapsibleLinearBlock::collapse() const {
  const auto& exp_opts = expand_.options();
  const auto& proj_opts = project_.options();
  const int64_t in_c = exp_opts.in_channels, mid = exp_opts.out_channels;
  const int64_t out_c = proj_opts.out_channels, k = kernel_;

  auto collapsed = std::make_unique<nn::Conv2d>(nn::Conv2dOptions{
      .in_channels = in_c, .out_channels = out_c, .kernel = k, .stride = 1, .padding = -1,
      .bias = true});

  const Tensor& w1 = const_cast<CollapsibleLinearBlock*>(this)->expand_.weight().value;
  const Tensor& b1 = const_cast<CollapsibleLinearBlock*>(this)->expand_.bias().value;
  const Tensor& w2 = const_cast<CollapsibleLinearBlock*>(this)->project_.weight().value;
  const Tensor& b2 = const_cast<CollapsibleLinearBlock*>(this)->project_.bias().value;

  Tensor& w_eff = collapsed->weight().value;
  Tensor& b_eff = collapsed->bias().value;

  // W_eff[o, i, kh, kw] = sum_p W2[o, p] * W1[p, i, kh, kw]
  for (int64_t o = 0; o < out_c; ++o) {
    for (int64_t p = 0; p < mid; ++p) {
      const float w2_op = w2[o * mid + p];
      if (w2_op == 0.0f) continue;
      const float* w1_p = w1.data() + p * in_c * k * k;
      float* w_eff_o = w_eff.data() + o * in_c * k * k;
      for (int64_t j = 0; j < in_c * k * k; ++j) w_eff_o[j] += w2_op * w1_p[j];
    }
    // b_eff[o] = W2[o, :] . b1 + b2[o]
    float acc = b2[o];
    for (int64_t p = 0; p < mid; ++p) acc += w2[o * mid + p] * b1[p];
    b_eff[o] = acc;
  }

  // Short residual folds into an identity tap at the spatial centre.
  if (short_residual_) {
    const int64_t centre = (k / 2) * k + (k / 2);
    for (int64_t o = 0; o < out_c; ++o)
      w_eff[(o * in_c + o) * k * k + centre] += 1.0f;
  }
  return collapsed;
}

// ---- Sesr ---------------------------------------------------------------------

Sesr::Sesr(SesrConfig config, Form form)
    : config_(config),
      form_(form),
      tile_(config.scale * config.scale),
      shuffle_(config.scale) {
  const int64_t f = config_.channels;
  const int64_t out_c = config_.image_channels * config_.scale * config_.scale;

  auto make_conv = [&](int64_t in_c, int64_t oc, int64_t k) -> std::unique_ptr<nn::Module> {
    if (form_ == Form::kTraining)
      return std::make_unique<CollapsibleLinearBlock>(in_c, oc, config_.expansion, k);
    return std::make_unique<nn::Conv2d>(nn::Conv2dOptions{
        .in_channels = in_c, .out_channels = oc, .kernel = k, .stride = 1, .padding = -1,
        .bias = true});
  };

  stages_.push_back({make_conv(config_.image_channels, f, 5), std::make_unique<nn::PReLU>(f)});
  for (int64_t i = 0; i < config_.m; ++i)
    stages_.push_back({make_conv(f, f, 3), std::make_unique<nn::PReLU>(f)});
  stages_.push_back({make_conv(f, out_c, 5), nullptr});
}

std::string Sesr::name() const {
  const std::string base =
      config_.channels == 32 && config_.m == 11 ? "sesr_xl" : "sesr_m" + std::to_string(config_.m);
  return base + (form_ == Form::kTraining ? "_train" : "");
}

std::vector<nn::Parameter*> Sesr::parameters() {
  std::vector<nn::Parameter*> params;
  for (auto& stage : stages_) {
    for (nn::Parameter* p : stage.conv->parameters()) params.push_back(p);
    if (stage.act)
      for (nn::Parameter* p : stage.act->parameters()) params.push_back(p);
  }
  return params;
}

void Sesr::init_weights(Rng& rng) {
  nn::init_he_normal(*this, rng);
  // Residual-friendly scaling: shrink the final stage so the freshly
  // initialised network starts out as (almost) the tiled-input residual,
  // i.e. a nearest-neighbour upscaler. Training then learns the *correction*
  // on top, which converges far faster than unlearning a random upscale —
  // the optimisation benefit linear overparameterisation is meant to exploit.
  Stage& last = stages_.back();
  if (auto* clb = dynamic_cast<CollapsibleLinearBlock*>(last.conv.get())) {
    for (nn::Parameter* p : clb->parameters())
      if (p->value.ndim() >= 2) p->value.mul_scalar(0.1f);  // 0.1 x 0.1 composed
  } else if (auto* conv = dynamic_cast<nn::Conv2d*>(last.conv.get())) {
    conv->weight().value.mul_scalar(0.01f);
  }
}

Tensor Sesr::forward(const Tensor& input) {
  // Stage 0: 5x5 feature extraction.
  Tensor x = stages_[0].act->forward(stages_[0].conv->forward(input));
  const Tensor first_out = x;

  // Inner 3x3 stages with the long feature residual.
  for (size_t i = 1; i + 1 < stages_.size(); ++i)
    x = stages_[i].act->forward(stages_[i].conv->forward(x));
  x.add_(first_out);

  // Final 5x5 to s^2 * C channels, plus the tiled-input residual, then shuffle.
  x = stages_.back().conv->forward(x);
  x.add_(tile_.forward(input));
  return shuffle_.forward(x);
}

Tensor Sesr::backward(const Tensor& grad_output) {
  Tensor g = shuffle_.backward(grad_output);
  Tensor grad_input = tile_.backward(g);  // input residual path
  g = stages_.back().conv->backward(g);

  Tensor g_long = g;  // long residual: gradient flows directly to stage-0 output
  for (size_t i = stages_.size() - 2; i >= 1; --i)
    g = stages_[i].conv->backward(stages_[i].act->backward(g));
  g.add_(g_long);

  grad_input.add_(stages_[0].conv->backward(stages_[0].act->backward(g)));
  return grad_input;
}

Shape Sesr::trace(const Shape& input, std::vector<nn::LayerInfo>* out) const {
  Shape x = stages_[0].act->trace(stages_[0].conv->trace(input, out), out);
  const Shape first = x;
  for (size_t i = 1; i + 1 < stages_.size(); ++i)
    x = stages_[i].act->trace(stages_[i].conv->trace(x, out), out);
  if (out) {
    nn::LayerInfo info;
    info.kind = nn::LayerKind::kElementwise;
    info.name = "long_residual_add";
    info.input = first;
    info.output = x;
    out->push_back(std::move(info));
  }
  x = stages_.back().conv->trace(x, out);
  const Shape tiled = tile_.trace(input, out);
  if (tiled != x)
    throw std::logic_error("Sesr::trace: input-residual shape mismatch");
  if (out) {
    nn::LayerInfo info;
    info.kind = nn::LayerKind::kElementwise;
    info.name = "input_residual_add";
    info.input = x;
    info.output = x;
    out->push_back(std::move(info));
  }
  return shuffle_.trace(x, out);
}

// Mirrors forward() step for step: stage-0 features, inner stages, the long
// feature residual, the final conv, the tiled-input residual, pixel shuffle.
int Sesr::compile_inference(nn::InferenceBuilder& builder, int input) const {
  builder.pin(input);  // re-read by the tiled-input residual at the end
  int x = stages_[0].act->compile_inference(
      builder, stages_[0].conv->compile_inference(builder, input));
  const int first = x;
  builder.pin(first);  // re-read by the long feature residual
  for (size_t i = 1; i + 1 < stages_.size(); ++i)
    x = stages_[i].act->compile_inference(builder,
                                          stages_[i].conv->compile_inference(builder, x));
  builder.emit_add(x, first);
  x = stages_.back().conv->compile_inference(builder, x);
  builder.emit_add(x, tile_.compile_inference(builder, input));
  return shuffle_.compile_inference(builder, x);
}

std::unique_ptr<Sesr> Sesr::collapse_from(const Sesr& trained) {
  if (trained.form_ != Form::kTraining)
    throw std::invalid_argument("Sesr::collapse_from: source must be a training-form network");

  auto inference = std::make_unique<Sesr>(trained.config_, Form::kInference);
  for (size_t i = 0; i < trained.stages_.size(); ++i) {
    const auto* clb = dynamic_cast<const CollapsibleLinearBlock*>(trained.stages_[i].conv.get());
    if (clb == nullptr) throw std::logic_error("Sesr::collapse_from: stage is not a CLB");
    inference->stages_[i].conv = clb->collapse();
    if (trained.stages_[i].act) {
      // PReLU slopes transfer unchanged (the activation sits outside the
      // linear block, so it is untouched by the collapse).
      auto src = const_cast<Sesr&>(trained).stages_[i].act->parameters();
      auto dst = inference->stages_[i].act->parameters();
      dst[0]->value = src[0]->value;
    }
  }
  return inference;
}

}  // namespace sesr::models
