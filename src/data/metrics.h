// Evaluation metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sesr::data {

/// Peak signal-to-noise ratio in dB between two same-shape tensors with
/// values in [0, 1] (peak = 1). Returns +inf-like large value (99 dB cap)
/// for identical inputs. Computed over all channels jointly, i.e. RGB PSNR —
/// the colourspace convention of the paper's Table I.
float psnr(const Tensor& a, const Tensor& b, float peak = 1.0f);

/// Fraction of positions where prediction == label, in percent.
float accuracy_percent(const std::vector<int64_t>& predictions,
                       const std::vector<int64_t>& labels);

}  // namespace sesr::data
