#include "data/shapes_tex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sesr::data {
namespace {

constexpr float kPi = 3.14159265358979323846f;

uint64_t mix_seed(uint64_t seed, int64_t index) {
  uint64_t x = seed ^ (static_cast<uint64_t>(index) * 0x9E3779B97F4A7C15ull + 0x85EBCA6Bull);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

struct Palette {
  float bg0[3], bg1[3], fg[3];
};

// Shape membership in unit coordinates: u, v in [-1, 1] relative to the
// jittered centre, pre-divided by the shape radius (so the nominal boundary
// sits at |coord| ~ 1).
bool shape_mask(int64_t label, float u, float v, float rot) {
  // Apply per-sample rotation jitter.
  const float cu = std::cos(rot) * u - std::sin(rot) * v;
  const float cv = std::sin(rot) * u + std::cos(rot) * v;
  u = cu;
  v = cv;
  switch (label) {
    case 0:  // disk
      return u * u + v * v < 1.0f;
    case 1:  // square
      return std::max(std::abs(u), std::abs(v)) < 0.9f;
    case 2:  // triangle (pointing up)
      return v < 0.75f && v > -0.75f + 1.5f * std::abs(u);
    case 3:  // diamond
      return std::abs(u) + std::abs(v) < 1.1f;
    case 4:  // ring
      return u * u + v * v < 1.0f && u * u + v * v > 0.36f;
    case 5:  // plus
      return (std::abs(u) < 0.35f && std::abs(v) < 1.0f) ||
             (std::abs(v) < 0.35f && std::abs(u) < 1.0f);
    case 6: {  // X (plus rotated 45 degrees)
      const float a = 0.7071f * (u + v), b = 0.7071f * (u - v);
      return (std::abs(a) < 0.3f && std::abs(b) < 1.0f) ||
             (std::abs(b) < 0.3f && std::abs(a) < 1.0f);
    }
    case 7:  // half disk
      return u * u + v * v < 1.0f && v > 0.05f;
    case 8:  // L (square minus one quadrant)
      return std::max(std::abs(u), std::abs(v)) < 0.9f && !(u > 0.0f && v < 0.0f);
    case 9: {  // two disks (dumbbell)
      const float d0 = (u - 0.55f) * (u - 0.55f) + v * v;
      const float d1 = (u + 0.55f) * (u + 0.55f) + v * v;
      return d0 < 0.42f * 0.42f * 4.0f || d1 < 0.42f * 0.42f * 4.0f;
    }
    default:
      return false;
  }
}

}  // namespace

ShapesTexDataset::ShapesTexDataset(ShapesTexOptions opts) : opts_(opts) {
  if (opts_.image_size < 8) throw std::invalid_argument("ShapesTexDataset: image too small");
  if (opts_.num_classes < 2 || opts_.num_classes > 10)
    throw std::invalid_argument("ShapesTexDataset: num_classes must be in [2, 10]");
}

Sample ShapesTexDataset::get(int64_t index) const {
  Rng rng(mix_seed(opts_.seed, index));
  const int64_t label = index % opts_.num_classes;
  const int64_t s = opts_.image_size;

  // Palette: background gradient colours plus a foreground colour pushed away
  // from the background mean so shapes are always visible.
  Palette pal{};
  for (int c = 0; c < 3; ++c) {
    pal.bg0[c] = rng.uniform(0.15f, 0.85f);
    pal.bg1[c] = rng.uniform(0.15f, 0.85f);
    const float mid = 0.5f * (pal.bg0[c] + pal.bg1[c]);
    pal.fg[c] = mid > 0.5f ? rng.uniform(0.05f, mid - 0.35f) : rng.uniform(mid + 0.35f, 0.95f);
  }

  // Geometry jitter.
  const float cx = 0.5f + rng.uniform(-0.12f, 0.12f);
  const float cy = 0.5f + rng.uniform(-0.12f, 0.12f);
  const float radius = rng.uniform(0.24f, 0.36f);
  const float rot = rng.uniform(-0.25f, 0.25f);

  // Texture fields: a low-frequency background wave and a high-frequency
  // foreground wave (the detail the SR stage must reconstruct).
  const float bg_freq = rng.uniform(1.0f, 3.0f);
  const float bg_phase = rng.uniform(0.0f, 2.0f * kPi);
  const float bg_angle = rng.uniform(0.0f, kPi);
  // Foreground texture is class-distinctive (frequency and orientation keyed
  // to the label, with per-sample jitter). Natural object classes carry
  // characteristic texture statistics; giving our classes the same property
  // makes classifiers learn quickly AND ties their decision evidence to the
  // high-frequency band that adversarial noise corrupts and SR restores —
  // exactly the regime the paper's defense operates in.
  const float fg_freq = 4.0f + 0.7f * static_cast<float>(label) + rng.uniform(-0.25f, 0.25f);
  const float fg_phase = rng.uniform(0.0f, 2.0f * kPi);
  const float fg_angle = kPi * static_cast<float>(label) /
                             static_cast<float>(opts_.num_classes) +
                         rng.uniform(-0.1f, 0.1f);
  const float grad_angle = rng.uniform(0.0f, 2.0f * kPi);

  Sample sample{Tensor({3, s, s}), label};
  for (int64_t y = 0; y < s; ++y) {
    for (int64_t x = 0; x < s; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) / static_cast<float>(s);
      const float fy = (static_cast<float>(y) + 0.5f) / static_cast<float>(s);

      // Background: oriented linear gradient + low-frequency wave.
      const float t = std::clamp(
          0.5f + (fx - 0.5f) * std::cos(grad_angle) + (fy - 0.5f) * std::sin(grad_angle), 0.0f,
          1.0f);
      const float bg_wave =
          0.06f * std::sin(2.0f * kPi * bg_freq *
                               (fx * std::cos(bg_angle) + fy * std::sin(bg_angle)) +
                           bg_phase);

      // Foreground membership.
      const float u = (fx - cx) / radius;
      const float v = (fy - cy) / radius;
      const bool inside = shape_mask(label, u, v, rot);
      const float fg_wave =
          0.14f * std::sin(2.0f * kPi * fg_freq *
                               (fx * std::cos(fg_angle) + fy * std::sin(fg_angle)) +
                           fg_phase);

      for (int64_t c = 0; c < 3; ++c) {
        float value;
        if (inside) {
          value = pal.fg[c] + fg_wave;
        } else {
          value = pal.bg0[c] * (1.0f - t) + pal.bg1[c] * t + bg_wave;
        }
        value += rng.normal(0.0f, opts_.noise_stddev);
        sample.image[(c * s + y) * s + x] = std::clamp(value, 0.0f, 1.0f);
      }
    }
  }
  return sample;
}

Tensor ShapesTexDataset::images(int64_t first, int64_t count) const {
  const int64_t s = opts_.image_size;
  Tensor batch({count, 3, s, s});
  for (int64_t i = 0; i < count; ++i) {
    const Sample sample = get(first + i);
    std::copy(sample.image.data(), sample.image.data() + 3 * s * s,
              batch.data() + i * 3 * s * s);
  }
  return batch;
}

std::vector<int64_t> ShapesTexDataset::labels(int64_t first, int64_t count) const {
  std::vector<int64_t> out(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) out[static_cast<size_t>(i)] = (first + i) % opts_.num_classes;
  return out;
}

Tensor ShapesTexDataset::images_at(const std::vector<int64_t>& indices) const {
  const int64_t s = opts_.image_size;
  Tensor batch({static_cast<int64_t>(indices.size()), 3, s, s});
  for (size_t i = 0; i < indices.size(); ++i) {
    const Sample sample = get(indices[i]);
    std::copy(sample.image.data(), sample.image.data() + 3 * s * s,
              batch.data() + static_cast<int64_t>(i) * 3 * s * s);
  }
  return batch;
}

std::vector<int64_t> ShapesTexDataset::labels_at(const std::vector<int64_t>& indices) const {
  std::vector<int64_t> out;
  out.reserve(indices.size());
  for (int64_t idx : indices) out.push_back(idx % opts_.num_classes);
  return out;
}

}  // namespace sesr::data
