// ShapesTex — procedural classification dataset (ImageNet-subset substitute).
//
// The paper evaluates on 5000 ImageNet validation images; the defense study
// needs (a) a classifier with high clean accuracy, (b) images living on a
// learnable "natural" manifold with genuine high-frequency content for the
// SR stage to restore, and (c) gradient attacks that actually break the
// classifier. ShapesTex provides this with 10 classes of textured geometric
// shapes rendered over textured backgrounds, with per-sample jitter in
// position, scale, palette and texture phase. Every sample is generated
// deterministically from (dataset seed, sample index).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace sesr::data {

struct Sample {
  Tensor image;  ///< [3, H, W] in [0, 1]
  int64_t label = 0;
};

struct ShapesTexOptions {
  int64_t image_size = 32;
  int64_t num_classes = 10;  ///< up to 10 shape classes
  uint64_t seed = 1;
  float noise_stddev = 0.02f;  ///< sensor-noise floor added to every image
};

/// Deterministic, index-addressable dataset (no storage; samples are
/// synthesised on demand).
class ShapesTexDataset {
 public:
  explicit ShapesTexDataset(ShapesTexOptions opts = {});

  [[nodiscard]] Sample get(int64_t index) const;

  /// Stack samples [first, first + count) into an [count, 3, H, W] batch.
  [[nodiscard]] Tensor images(int64_t first, int64_t count) const;
  [[nodiscard]] std::vector<int64_t> labels(int64_t first, int64_t count) const;

  /// Stack an arbitrary index list (for shuffled minibatches).
  [[nodiscard]] Tensor images_at(const std::vector<int64_t>& indices) const;
  [[nodiscard]] std::vector<int64_t> labels_at(const std::vector<int64_t>& indices) const;

  [[nodiscard]] const ShapesTexOptions& options() const { return opts_; }

 private:
  ShapesTexOptions opts_;
};

}  // namespace sesr::data
