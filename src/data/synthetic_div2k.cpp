#include "data/synthetic_div2k.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "preprocess/interpolation.h"

namespace sesr::data {
namespace {

constexpr float kPi = 3.14159265358979323846f;

uint64_t mix_seed(uint64_t seed, int64_t index) {
  uint64_t x = seed ^ (static_cast<uint64_t>(index) * 0xD6E8FEB86659FD93ull + 0x2545F491ull);
  x ^= x >> 31;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 29;
  return x;
}

}  // namespace

SyntheticDiv2k::SyntheticDiv2k(SyntheticDiv2kOptions opts) : opts_(opts) {
  if (opts_.hr_size % opts_.scale != 0)
    throw std::invalid_argument("SyntheticDiv2k: hr_size must be divisible by scale");
  if (opts_.hr_size < 8) throw std::invalid_argument("SyntheticDiv2k: patch too small");
}

Tensor SyntheticDiv2k::render_hr(int64_t index) const {
  Rng rng(mix_seed(opts_.seed, index));
  const int64_t s = opts_.hr_size;
  Tensor hr({3, s, s});

  // Base: oriented colour gradient.
  float c0[3], c1[3];
  for (int c = 0; c < 3; ++c) {
    c0[c] = rng.uniform(0.1f, 0.9f);
    c1[c] = rng.uniform(0.1f, 0.9f);
  }
  const float grad_angle = rng.uniform(0.0f, 2.0f * kPi);

  // 2-4 soft-edged ellipses (objects).
  struct Ellipse {
    float cx, cy, rx, ry, rot, color[3], softness;
  };
  const int n_ellipses = static_cast<int>(rng.randint(2, 4));
  std::vector<Ellipse> ellipses(static_cast<size_t>(n_ellipses));
  for (auto& e : ellipses) {
    e.cx = rng.uniform(0.1f, 0.9f);
    e.cy = rng.uniform(0.1f, 0.9f);
    e.rx = rng.uniform(0.08f, 0.35f);
    e.ry = rng.uniform(0.08f, 0.35f);
    e.rot = rng.uniform(0.0f, kPi);
    e.softness = rng.uniform(0.02f, 0.15f);
    for (int c = 0; c < 3; ++c) e.color[c] = rng.uniform(0.05f, 0.95f);
  }

  // 2 oriented sinusoid textures at different scales + 1 hard edge.
  const float tex1_freq = rng.uniform(2.0f, 5.0f), tex1_angle = rng.uniform(0.0f, kPi);
  const float tex1_amp = rng.uniform(0.02f, 0.08f), tex1_phase = rng.uniform(0.0f, 2 * kPi);
  const float tex2_freq = rng.uniform(6.0f, 12.0f), tex2_angle = rng.uniform(0.0f, kPi);
  const float tex2_amp = rng.uniform(0.03f, 0.10f), tex2_phase = rng.uniform(0.0f, 2 * kPi);
  const bool has_edge = rng.bernoulli(0.7);
  const float edge_pos = rng.uniform(0.2f, 0.8f), edge_angle = rng.uniform(0.0f, kPi);
  const float edge_contrast = rng.uniform(0.1f, 0.3f);

  for (int64_t y = 0; y < s; ++y) {
    for (int64_t x = 0; x < s; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) / static_cast<float>(s);
      const float fy = (static_cast<float>(y) + 0.5f) / static_cast<float>(s);
      const float t = std::clamp(
          0.5f + (fx - 0.5f) * std::cos(grad_angle) + (fy - 0.5f) * std::sin(grad_angle), 0.0f,
          1.0f);

      float rgb[3];
      for (int c = 0; c < 3; ++c) rgb[c] = c0[c] * (1.0f - t) + c1[c] * t;

      // Composite ellipses with soft alpha.
      for (const auto& e : ellipses) {
        const float dx = fx - e.cx, dy = fy - e.cy;
        const float u = (std::cos(e.rot) * dx + std::sin(e.rot) * dy) / e.rx;
        const float v = (-std::sin(e.rot) * dx + std::cos(e.rot) * dy) / e.ry;
        const float d = u * u + v * v;
        const float alpha = std::clamp((1.0f - d) / e.softness, 0.0f, 1.0f);
        if (alpha > 0.0f)
          for (int c = 0; c < 3; ++c) rgb[c] = rgb[c] * (1.0f - alpha) + e.color[c] * alpha;
      }

      // Textures (luminance-coupled, like natural surface detail).
      const float w1 = tex1_amp * std::sin(2 * kPi * tex1_freq *
                                               (fx * std::cos(tex1_angle) + fy * std::sin(tex1_angle)) +
                                           tex1_phase);
      const float w2 = tex2_amp * std::sin(2 * kPi * tex2_freq *
                                               (fx * std::cos(tex2_angle) + fy * std::sin(tex2_angle)) +
                                           tex2_phase);
      float edge = 0.0f;
      if (has_edge) {
        const float proj = fx * std::cos(edge_angle) + fy * std::sin(edge_angle);
        edge = proj > edge_pos ? edge_contrast : -edge_contrast;
      }
      for (int c = 0; c < 3; ++c)
        hr[(c * s + y) * s + x] = std::clamp(rgb[c] + w1 + w2 + edge * 0.5f, 0.0f, 1.0f);
    }
  }
  return hr;
}

SrPair SyntheticDiv2k::get(int64_t index) const {
  Tensor hr = render_hr(index);
  Tensor hr_batched = hr.reshaped({1, 3, opts_.hr_size, opts_.hr_size});
  Tensor lr = preprocess::downscale(hr_batched, opts_.scale);
  const int64_t lr_size = opts_.hr_size / opts_.scale;
  return {std::move(lr).reshaped({3, lr_size, lr_size}), std::move(hr)};
}

SyntheticDiv2k::Batch SyntheticDiv2k::batch(int64_t first, int64_t count) const {
  const int64_t hs = opts_.hr_size, ls = hs / opts_.scale;
  Batch out{Tensor({count, 3, ls, ls}), Tensor({count, 3, hs, hs})};
  for (int64_t i = 0; i < count; ++i) {
    SrPair pair = get(first + i);
    std::copy(pair.lr.data(), pair.lr.data() + 3 * ls * ls, out.lr.data() + i * 3 * ls * ls);
    std::copy(pair.hr.data(), pair.hr.data() + 3 * hs * hs, out.hr.data() + i * 3 * hs * hs);
  }
  return out;
}

}  // namespace sesr::data
