#include "data/metrics.h"

#include <cmath>
#include <stdexcept>

namespace sesr::data {

float psnr(const Tensor& a, const Tensor& b, float peak) {
  if (a.shape() != b.shape()) throw std::invalid_argument("psnr: shape mismatch");
  double mse = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.numel());
  if (mse <= 1e-20) return 99.0f;
  return static_cast<float>(10.0 * std::log10(static_cast<double>(peak) * peak / mse));
}

float accuracy_percent(const std::vector<int64_t>& predictions,
                       const std::vector<int64_t>& labels) {
  if (predictions.size() != labels.size() || predictions.empty())
    throw std::invalid_argument("accuracy_percent: size mismatch or empty");
  int64_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i] == labels[i]) ++correct;
  return 100.0f * static_cast<float>(correct) / static_cast<float>(predictions.size());
}

}  // namespace sesr::data
