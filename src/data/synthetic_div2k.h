// SyntheticDiv2k — procedural SR training corpus (DIV2K substitute).
//
// Generates high-resolution patches with natural-image statistics (piecewise
// smooth regions, soft and hard edges, oriented textures at several scales)
// and derives the low-resolution input by bicubic downsampling — the exact
// protocol used to create DIV2K LR/HR training pairs. What SR training needs
// from DIV2K is spatial correlation plus high-frequency detail whose
// statistics the network can learn; this generator supplies both,
// deterministically.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace sesr::data {

struct SrPair {
  Tensor lr;  ///< [3, H/scale, W/scale]
  Tensor hr;  ///< [3, H, W]
};

struct SyntheticDiv2kOptions {
  int64_t hr_size = 32;  ///< HR patch edge (must be divisible by scale)
  int64_t scale = 2;
  uint64_t seed = 2;
};

/// Deterministic, index-addressable SR patch source.
class SyntheticDiv2k {
 public:
  explicit SyntheticDiv2k(SyntheticDiv2kOptions opts = {});

  [[nodiscard]] SrPair get(int64_t index) const;

  /// Stacked batches for training: returns {lr batch, hr batch}.
  struct Batch {
    Tensor lr;
    Tensor hr;
  };
  [[nodiscard]] Batch batch(int64_t first, int64_t count) const;

  [[nodiscard]] const SyntheticDiv2kOptions& options() const { return opts_; }

 private:
  [[nodiscard]] Tensor render_hr(int64_t index) const;

  SyntheticDiv2kOptions opts_;
};

}  // namespace sesr::data
